// Package chaos is the repo's nemesis subsystem: seeded, reproducible fault
// schedules driven against ringbft/ahl/sharper clusters, with cross-replica
// invariant checking afterwards.
//
// The paper's claims are resilience claims — linear ring communication that
// stays safe and live under cross-shard conflicts, primary failures, and the
// A1/A2 attacks — so instead of sampling fault interleavings with a handful
// of hand-written scenario tests, this package enumerates them: a Scenario
// is (protocol, fault class, seed); BuildSchedule expands it into a timed
// sequence of fault/heal events; the deterministic logical-time engine
// (cluster.go) applies them while a seeded workload runs; and the checkers
// (checkers.go) assert safety across every replica (no two replicas of a
// shard commit different digests at one sequence, committed prefixes are
// consistent, converged replicas agree on state and execution results) plus
// liveness (freshly injected probe batches commit within a bounded number of
// ticks after the last heal).
//
// Everything is derived from Scenario.Seed: the workload, the fault times,
// the victims, per-message loss coins and delivery jitter. Re-running a
// scenario with the same seed replays it exactly, so any CI failure is
// reproducible from the seed its failure message prints (see ReproCmd).
//
// The same Schedule also drives the wall-clock harness (harness.go in this
// package, via harness.Config.Nemesis) for long soak runs over the simulated
// WAN with real goroutines and timers — `cmd/ringbft-chaos` is the entry
// point CI's nightly chaos workflow uses.
package chaos

import (
	"fmt"
	"math/rand"

	"ringbft/internal/harness"
	"ringbft/internal/types"
)

// Fault names one nemesis class of the scenario matrix.
type Fault string

const (
	// FaultNone runs the workload fault-free (the matrix's control row).
	FaultNone Fault = "none"
	// FaultPartitionShard severs every link between shard 0 and the rest
	// of the system, both directions (the C1 no-communication attack).
	FaultPartitionShard Fault = "partition-shard"
	// FaultPartitionAsym blocks shard 0 -> shard 1 only: messages flow
	// one way (the C2 partial-communication attack).
	FaultPartitionAsym Fault = "partition-asym"
	// FaultPartitionLane severs the cross-shard links of one or two
	// replica indexes — RingBFT's linear communication lanes — forcing
	// recovery through the remaining same-index relays.
	FaultPartitionLane Fault = "partition-lane"
	// FaultLossStorm drops a large fraction of replica-to-replica traffic
	// for a window (attack A2's unreliable network).
	FaultLossStorm Fault = "loss-storm"
	// FaultDelaySkew adds multi-tick delay to every cross-shard link for
	// a window, skewing rotations without dropping anything.
	FaultDelaySkew Fault = "delay-skew"
	// FaultCrashRestart crashes a replica mid-run and restarts it from
	// its durable state (WAL + snapshots) a while later.
	FaultCrashRestart Fault = "crash-restart"
	// FaultWipeRejoin crashes a replica, erases its data directory, and
	// restarts it empty — it must rejoin via checkpoint-certified peer
	// state transfer. RingBFT only (the baselines have no state transfer).
	FaultWipeRejoin Fault = "wipe-rejoin"
	// FaultByzSilent makes a primary drop all outbound traffic while
	// still receiving — a dark primary only timers can unmask.
	FaultByzSilent Fault = "byz-silent"
	// FaultByzEquivocate makes a primary send conflicting, correctly
	// MAC'd PrePrepares to different backups at the same (view, seq).
	FaultByzEquivocate Fault = "byz-equivocate"
	// FaultByzNewView darkens the view-0 primary of a non-initiator shard
	// to force a view change, then makes the successor primary append a
	// fabricated, justification-free cross-shard re-proposal to the NewView
	// it must send. Honest replicas must reject the NewView wholesale at
	// the justification gate, record evidence naming the forger, and
	// recover liveness by escalating past it. RingBFT only (the baselines
	// carry no justification certificates for the gate to check).
	FaultByzNewView Fault = "byz-newview"
	// FaultClientDuplicate makes one client fan every fresh request out to
	// all replicas of the initiating shard instead of just the primary.
	// This is legal traffic — honest retransmission does exactly the same —
	// so the protocol must dedupe it and no replica may record evidence
	// against the client.
	FaultClientDuplicate Fault = "client-duplicate"
	// FaultClientConflict makes one client send two different batches
	// carrying the same transaction IDs. Replicas must stay safe (the two
	// digests commit as distinct batches, consistently everywhere) and
	// record client-conflict evidence naming exactly that client.
	FaultClientConflict Fault = "client-conflict"
	// FaultPipelineViewChange silences a primary that is running a deep
	// proposal pipeline (Scenario.PipelineDepth, default 4 for this fault):
	// the view change fires while a full window of PRE-PREPAREd-but-
	// uncommitted proposals is in flight, and the successor must re-propose
	// the whole set (sorted-digest order) with none lost and none executed
	// twice. RingBFT only — the pipeline window lives in its propose path.
	FaultPipelineViewChange Fault = "pipeline-viewchange"
)

// Faults lists every fault class, matrix order.
func Faults() []Fault {
	return []Fault{
		FaultNone, FaultPartitionShard, FaultPartitionAsym, FaultPartitionLane,
		FaultLossStorm, FaultDelaySkew, FaultCrashRestart, FaultWipeRejoin,
		FaultByzSilent, FaultByzEquivocate, FaultByzNewView,
		FaultClientDuplicate, FaultClientConflict, FaultPipelineViewChange,
	}
}

// Scenario is one cell of the chaos matrix. The zero values of the sizing
// fields are filled by Normalize.
type Scenario struct {
	Protocol harness.Protocol
	Fault    Fault
	Seed     int64

	Shards           int
	ReplicasPerShard int
	Clients          int
	BatchSize        int
	CrossShardPct    float64
	Records          int
	// PipelineDepth is the primary's in-flight proposal bound
	// (types.Config.PipelineDepth): 0 = legacy unbounded drain. Part of
	// the scenario identity (Name, fingerprint), since it changes which
	// proposals exist when a fault lands.
	PipelineDepth int
	// Horizon is the number of logical ticks the workload+nemesis phase
	// runs before the liveness probe; ProbeBudget bounds how many further
	// ticks the probe batches may take to commit.
	Horizon     int
	ProbeBudget int

	// Instrument attaches a metrics registry and per-node lifecycle tracers
	// to the cluster. Pure side effect: Name, BuildSchedule, and the run's
	// fingerprint are all independent of it — TestSeedDeterminism asserts an
	// instrumented run is byte-identical to an uninstrumented one.
	Instrument bool
}

// Normalize fills defaults, returning the effective scenario.
func (s Scenario) Normalize() Scenario {
	if s.Protocol == "" {
		s.Protocol = harness.ProtoRingBFT
	}
	if s.Fault == "" {
		s.Fault = FaultNone
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 2
	}
	if s.ReplicasPerShard <= 0 {
		s.ReplicasPerShard = 4
	}
	if s.Clients <= 0 {
		s.Clients = 4
	}
	if s.BatchSize <= 0 {
		s.BatchSize = 4
	}
	if s.CrossShardPct == 0 {
		s.CrossShardPct = 0.3
	}
	if s.Records <= 0 {
		s.Records = 512
	}
	if s.Fault == FaultPipelineViewChange && s.PipelineDepth <= 0 {
		s.PipelineDepth = 4
	}
	if s.Horizon <= 0 {
		s.Horizon = 260
	}
	if s.ProbeBudget <= 0 {
		s.ProbeBudget = 400
	}
	return s
}

// Name is the scenario's stable identifier: protocol/fault/seed, plus the
// shard count when it deviates from the default topology.
func (s Scenario) Name() string {
	n := s.Normalize()
	name := fmt.Sprintf("%s/%s/seed=%d", n.Protocol, n.Fault, n.Seed)
	if n.Shards != 2 {
		name += fmt.Sprintf("/shards=%d", n.Shards)
	}
	if n.PipelineDepth > 0 {
		name += fmt.Sprintf("/depth=%d", n.PipelineDepth)
	}
	return name
}

// ReproCmd prints the command that replays exactly this scenario; every
// checker failure message embeds it.
func (s Scenario) ReproCmd() string {
	n := s.Normalize()
	return fmt.Sprintf("go test ./internal/chaos/ -run TestReplaySeed -chaos.proto=%s -chaos.fault=%s -chaos.seed=%d -chaos.shards=%d -chaos.depth=%d -v",
		n.Protocol, n.Fault, n.Seed, n.Shards, n.PipelineDepth)
}

// Op is one declarative nemesis operation; the deterministic engine and the
// wall-clock harness adapter both interpret the same ops.
type Op int

const (
	OpPartitionShard  Op = iota // isolate Shard, both directions
	OpPartitionAsym             // block Shard -> Shard2 only
	OpPartitionLane             // sever cross-shard links of replica index Index (and Index2 if >= 0)
	OpLoss                      // drop replica traffic with probability P
	OpDelay                     // add Ticks delay to cross-shard links
	OpCrash                     // crash replica (Shard, Index)
	OpRestart                   // restart replica (Shard, Index); Wipe erases its data dir first
	OpByzSilent                 // replica (Shard, Index) drops all outbound traffic
	OpByzEquivocate             // replica (Shard, Index) equivocates PrePrepares
	OpByzNewView                // replica (Shard, Index) appends an unjustified re-proposal to its NewViews
	OpClientDuplicate           // the adversarial client fans every fresh request out to all replicas
	OpClientConflict            // the adversarial client pairs every fresh request with a conflicting same-TxnID variant
	OpHeal                      // clear partitions, loss, delay, Byzantine modes, and client faults
)

func (o Op) String() string {
	switch o {
	case OpPartitionShard:
		return "partition-shard"
	case OpPartitionAsym:
		return "partition-asym"
	case OpPartitionLane:
		return "partition-lane"
	case OpLoss:
		return "loss"
	case OpDelay:
		return "delay"
	case OpCrash:
		return "crash"
	case OpRestart:
		return "restart"
	case OpByzSilent:
		return "byz-silent"
	case OpByzEquivocate:
		return "byz-equivocate"
	case OpByzNewView:
		return "byz-newview"
	case OpClientDuplicate:
		return "client-duplicate"
	case OpClientConflict:
		return "client-conflict"
	case OpHeal:
		return "heal"
	}
	return "?"
}

// Event is one timed nemesis operation.
type Event struct {
	At     int // logical tick (deterministic engine) / fraction of the fault window (wall-clock)
	Op     Op
	Shard  types.ShardID
	Shard2 types.ShardID
	Index  int
	Index2 int // second lane for OpPartitionLane; -1 = none
	P      float64
	Ticks  int
	Wipe   bool
}

func (e Event) String() string {
	return fmt.Sprintf("t=%d %s(s=%d/%d i=%d/%d p=%.2f ticks=%d wipe=%v)",
		e.At, e.Op, e.Shard, e.Shard2, e.Index, e.Index2, e.P, e.Ticks, e.Wipe)
}

// Schedule is a seeded nemesis schedule: timed events, all of them healed by
// LastHeal, inside a horizon of Horizon ticks.
type Schedule struct {
	Events   []Event
	LastHeal int
	Horizon  int
}

// BuildSchedule expands a scenario into its deterministic event sequence.
// All randomness (fault times, victims, probabilities) is drawn from the
// scenario seed, so the same scenario always yields the same schedule.
func BuildSchedule(sc Scenario) Schedule {
	sc = sc.Normalize()
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5eed5eed))
	h := sc.Horizon
	// The fault window: start after the workload has warmed up, heal with
	// at least 35% of the horizon left so liveness has room to recover.
	start := h/8 + rng.Intn(h/8)
	heal := h/2 + rng.Intn(h/8)

	var events []Event
	add := func(e Event) { events = append(events, e) }

	victimShard := types.ShardID(rng.Intn(sc.Shards))
	otherShard := types.ShardID((int(victimShard) + 1) % sc.Shards)

	switch sc.Fault {
	case FaultNone:
		return Schedule{Horizon: h}
	case FaultPartitionShard:
		add(Event{At: start, Op: OpPartitionShard, Shard: victimShard})
		add(Event{At: heal, Op: OpHeal})
	case FaultPartitionAsym:
		add(Event{At: start, Op: OpPartitionAsym, Shard: victimShard, Shard2: otherShard})
		add(Event{At: heal, Op: OpHeal})
	case FaultPartitionLane:
		lane := rng.Intn(sc.ReplicasPerShard)
		lane2 := -1
		if rng.Intn(2) == 1 { // sometimes sever two of the n lanes
			lane2 = (lane + 1 + rng.Intn(sc.ReplicasPerShard-1)) % sc.ReplicasPerShard
		}
		add(Event{At: start, Op: OpPartitionLane, Index: lane, Index2: lane2})
		add(Event{At: heal, Op: OpHeal})
	case FaultLossStorm:
		add(Event{At: start, Op: OpLoss, P: 0.25 + 0.25*rng.Float64()})
		add(Event{At: heal, Op: OpHeal})
	case FaultDelaySkew:
		add(Event{At: start, Op: OpDelay, Ticks: 2 + rng.Intn(4)})
		add(Event{At: heal, Op: OpHeal})
	case FaultCrashRestart:
		// Crash the view-0 primary half the time, a backup otherwise.
		idx := 0
		if rng.Intn(2) == 1 {
			idx = 1 + rng.Intn(sc.ReplicasPerShard-1)
		}
		add(Event{At: start, Op: OpCrash, Shard: victimShard, Index: idx})
		add(Event{At: heal, Op: OpRestart, Shard: victimShard, Index: idx})
	case FaultWipeRejoin:
		idx := 1 + rng.Intn(sc.ReplicasPerShard-1) // wipe a backup
		add(Event{At: start, Op: OpCrash, Shard: victimShard, Index: idx})
		add(Event{At: heal, Op: OpRestart, Shard: victimShard, Index: idx, Wipe: true})
	case FaultByzSilent:
		add(Event{At: start, Op: OpByzSilent, Shard: victimShard, Index: 0})
		add(Event{At: heal, Op: OpHeal})
	case FaultByzEquivocate:
		add(Event{At: start, Op: OpByzEquivocate, Shard: victimShard, Index: 0})
		add(Event{At: heal, Op: OpHeal})
	case FaultByzNewView:
		// The forger must sit on a non-initiator shard: shard 0 initiates
		// every batch a forger could fabricate, so its own Justify gate
		// would pass (see harness.ForgeUnjustifiedProof). Darken the view-0
		// primary to force the view change, then let its successor (the
		// view-1 primary, index 1) forge the NewView it now owes.
		byzShard := types.ShardID(0)
		if sc.Shards > 1 {
			byzShard = types.ShardID(1 + rng.Intn(sc.Shards-1))
		}
		add(Event{At: start, Op: OpByzSilent, Shard: byzShard, Index: 0})
		add(Event{At: start, Op: OpByzNewView, Shard: byzShard, Index: 1})
		add(Event{At: heal, Op: OpHeal})
	case FaultClientDuplicate:
		add(Event{At: start, Op: OpClientDuplicate})
		add(Event{At: heal, Op: OpHeal})
	case FaultClientConflict:
		add(Event{At: start, Op: OpClientConflict})
		add(Event{At: heal, Op: OpHeal})
	case FaultPipelineViewChange:
		// Same unmasking as byz-silent, but the scenario runs a deep
		// pipeline (Normalize sets PipelineDepth): the primary goes dark
		// with a window of uncommitted proposals in flight, so the view
		// change must carry the whole set — the successor re-proposes every
		// awaited batch in sorted-digest order, and the checkers assert
		// nothing was lost, duplicated, or executed twice.
		add(Event{At: start, Op: OpByzSilent, Shard: victimShard, Index: 0})
		add(Event{At: heal, Op: OpHeal})
	default:
		panic(fmt.Sprintf("chaos: unknown fault %q", sc.Fault))
	}
	return Schedule{Events: events, LastHeal: heal, Horizon: h}
}
