package chaos

import (
	"testing"
	"time"

	"ringbft/internal/harness"
)

// TestWallClockNemesisSmoke drives one seeded schedule through the real
// harness (goroutines, simulated WAN, real timers): the nemesis must
// actually fire (messages dropped), safety must hold across every captured
// replica, and the cluster must keep committing. The deterministic matrix
// is the exhaustive surface; this pins the harness integration the nightly
// soak builds on.
func TestWallClockNemesisSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock run")
	}
	res, err := RunWallClock(Scenario{
		Protocol: harness.ProtoRingBFT,
		Fault:    FaultPartitionShard,
		Seed:     7,
	}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatal(res.FailureReport())
	}
	if res.Result.Txns == 0 {
		t.Fatal("wall-clock chaos run committed nothing")
	}
	if res.Result.NemesisLastHeal == 0 {
		t.Fatal("nemesis never healed — schedule did not run")
	}
	if len(res.Result.Replicas) == 0 {
		t.Fatal("no replica states captured")
	}
	t.Logf("committed %d txns, %d replicas captured, healed at %v, dropped %d msgs",
		res.Result.Txns, len(res.Result.Replicas), res.Result.NemesisLastHeal, res.Result.MsgsDropped)
}
