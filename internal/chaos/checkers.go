package chaos

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"ringbft/internal/harness"
	"ringbft/internal/types"
)

// Violation is one failed invariant. Detail is human-readable and names the
// replicas involved; the scenario runner prefixes it with the reproduction
// command.
type Violation struct {
	Check  string
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// CheckStates runs the cross-replica safety checkers over captured states:
//
//   - chain-verify: every replica's hash chain and Merkle roots verify;
//   - seq-digest-agreement: no two replicas of one shard committed
//     different batch digests at the same sequence number (covers forks and
//     successful equivocation);
//   - state-agreement: replicas of one shard that committed the same block
//     set reached the same store digest (divergent execution);
//   - executed-agreement: replicas of one shard agree on the execution
//     results of every batch both executed.
//
// Replicas that lag (crashed, dark, still transferring state) are naturally
// covered: their prefixes must agree where defined, and the convergence
// checker below demands enough fully-converged replicas.
func CheckStates(states []harness.ReplicaState) []Violation {
	var out []Violation
	byShard := groupByShard(states)
	for _, st := range states {
		if !st.ChainOK {
			out = append(out, Violation{"chain-verify",
				fmt.Sprintf("replica %v: broken hash chain or merkle root", st.ID)})
		}
	}
	for _, shard := range sortedShards(byShard) {
		group := byShard[shard]
		// seq -> first-seen digest and owner.
		type seen struct {
			digest types.Digest
			owner  types.NodeID
		}
		firstAt := make(map[types.SeqNum]seen)
		for _, st := range group {
			for _, b := range st.Blocks {
				if prev, ok := firstAt[b.Seq]; ok {
					if prev.digest != b.Digest {
						out = append(out, Violation{"seq-digest-agreement",
							fmt.Sprintf("shard %d seq %d: %v committed %x, %v committed %x",
								shard, b.Seq, prev.owner, prev.digest[:6], st.ID, b.Digest[:6])})
					}
				} else {
					firstAt[b.Seq] = seen{b.Digest, st.ID}
				}
			}
		}
		// Same committed block set => same state digest.
		keys := normalizedKeys(group)
		byBlocks := make(map[string][]harness.ReplicaState)
		for i, st := range group {
			byBlocks[keys[i]] = append(byBlocks[keys[i]], st)
		}
		blockKeys := make([]string, 0, len(byBlocks))
		for k := range byBlocks {
			blockKeys = append(blockKeys, k)
		}
		sort.Strings(blockKeys)
		for _, k := range blockKeys {
			same := byBlocks[k]
			for i := 1; i < len(same); i++ {
				if same[i].StateDigest != same[0].StateDigest {
					out = append(out, Violation{"state-agreement",
						fmt.Sprintf("shard %d: %v and %v committed the same %d blocks but diverge in state (%x vs %x)",
							shard, same[0].ID, same[i].ID, len(same[0].Blocks),
							same[0].StateDigest[:6], same[i].StateDigest[:6])})
				}
			}
		}
		// Executed-result agreement on common digests.
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				for _, d := range types.SortedDigestKeys(a.Executed) {
					ha := a.Executed[d]
					if hb, ok := b.Executed[d]; ok && ha != hb {
						out = append(out, Violation{"executed-agreement",
							fmt.Sprintf("shard %d batch %x: %v and %v executed to different results",
								shard, d[:6], a.ID, b.ID)})
					}
				}
			}
		}
	}
	return out
}

// Expectation names the nodes a schedule actually made faulty. Culprits is
// the full set evidence may accuse — a record naming anyone else is a false
// accusation of an honest node. Required is the subset whose misbehavior
// leaves verifiable evidence (equivocation, forged NewViews, conflicting
// client batches) and therefore must be accused by at least one replica;
// silent nodes are faulty but never provably so, and belong only to
// Culprits.
type Expectation struct {
	Culprits map[types.NodeID]bool
	Required []types.NodeID
}

// ExpectedCulprits derives the accountability expectation from the schedule
// the scenario actually ran: exactly the nodes its events corrupted, split
// into provable and unprovable misbehavior. Duplicate-storm clients are
// deliberately absent — duplicates are indistinguishable from honest
// retransmission, so accusing that client is a false accusation.
func ExpectedCulprits(sched Schedule) Expectation {
	exp := Expectation{Culprits: make(map[types.NodeID]bool)}
	required := make(map[types.NodeID]bool)
	for _, e := range sched.Events {
		switch e.Op {
		case OpByzSilent:
			// Faulty but unprovable: silence looks like a slow network.
			exp.Culprits[types.ReplicaNode(e.Shard, e.Index)] = true
		case OpByzEquivocate, OpByzNewView:
			id := types.ReplicaNode(e.Shard, e.Index)
			exp.Culprits[id] = true
			required[id] = true
		case OpClientConflict:
			id := types.ClientNode(advClientID)
			exp.Culprits[id] = true
			required[id] = true
		default:
			// Fault-injection ops (partitions, crashes, delays, duplicate
			// storms) corrupt nothing provable: no culprit expectation.
		}
	}
	exp.Required = types.SortedNodeKeys(required)
	return exp
}

// CheckAccountability asserts the Byzantine-accountability contract over the
// captured evidence logs: every record accuses an actually faulty node (zero
// honest accusations, the soundness half) and every provably faulty node is
// accused by at least one replica (no silent pardons, the completeness
// half).
func CheckAccountability(states []harness.ReplicaState, exp Expectation) []Violation {
	var out []Violation
	accused := make(map[types.NodeID]bool)
	for _, st := range states {
		for _, rec := range st.Evidence {
			accused[rec.Accused] = true
			if !exp.Culprits[rec.Accused] {
				out = append(out, Violation{"accountability",
					fmt.Sprintf("replica %v accuses honest node %v of %s at seq %d",
						st.ID, rec.Accused, rec.Kind, rec.Seq)})
			}
		}
	}
	for _, id := range exp.Required {
		if !accused[id] {
			out = append(out, Violation{"accountability",
				fmt.Sprintf("provably faulty node %v was never accused — no replica holds evidence", id)})
		}
	}
	return out
}

// CheckConvergence demands that at least minPerShard replicas of every shard
// fully agree: identical committed block sets and identical state digests.
// With minPerShard = n-f this asserts the cluster actually converged after
// healing, rather than passing the safety checkers vacuously via disjoint
// prefixes.
func CheckConvergence(states []harness.ReplicaState, minPerShard int) []Violation {
	var out []Violation
	byShard := groupByShard(states)
	for _, shard := range sortedShards(byShard) {
		group := byShard[shard]
		keys := normalizedKeys(group)
		counts := make(map[string]int)
		for i, st := range group {
			counts[keys[i]+string(st.StateDigest[:])]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		if best < minPerShard {
			heights := make([]int, 0, len(group))
			for _, st := range group {
				heights = append(heights, st.Height)
			}
			out = append(out, Violation{"convergence",
				fmt.Sprintf("shard %d: largest agreeing replica group is %d < %d (heights %v)",
					shard, best, minPerShard, heights)})
		}
	}
	return out
}

// blockSetKey fingerprints a replica's committed block set above floor: the
// sorted (seq, digest) pairs with Seq > floor. Append order may legitimately
// differ across replicas (cross-shard blocks append on Execute arrival), so
// the set — not the retained order or the chaining hashes — is the
// agreement surface.
func blockSetKey(st harness.ReplicaState, floor types.SeqNum) []byte {
	recs := append([]harness.BlockRecord(nil), st.Blocks...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	h := sha256.New()
	var buf [8]byte
	for _, b := range recs {
		if b.Seq <= floor {
			continue
		}
		binary.BigEndian.PutUint64(buf[:], uint64(b.Seq))
		h.Write(buf[:])
		h.Write(b.Digest[:])
	}
	return h.Sum(nil)
}

// normalizedKeys fingerprints each replica's exact executed set — the thing
// that determines its state. The set is {1..ExecutedThrough} plus the
// retained blocks above the watermark (out-of-order executions), so the key
// is (watermark, sorted (seq, digest) pairs above it). Retained blocks at
// or below the watermark are redundant for the key — pruning drops them at
// replica-specific times, which must not split otherwise identical
// replicas. Digest agreement below the watermark is covered by the
// seq-digest checker on retained overlap and by checkpoint certification
// for pruned prefixes.
func normalizedKeys(group []harness.ReplicaState) []string {
	keys := make([]string, len(group))
	for i, st := range group {
		keys[i] = fmt.Sprintf("e%d|%x", st.ExecutedThrough,
			blockSetKey(st, st.ExecutedThrough))
	}
	return keys
}

func groupByShard(states []harness.ReplicaState) map[types.ShardID][]harness.ReplicaState {
	out := make(map[types.ShardID][]harness.ReplicaState)
	for _, st := range states {
		out[st.ID.Shard] = append(out[st.ID.Shard], st)
	}
	return out
}

func sortedShards(m map[types.ShardID][]harness.ReplicaState) []types.ShardID {
	shards := make([]types.ShardID, 0, len(m))
	for s := range m {
		shards = append(shards, s)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
	return shards
}

// fingerprintStates folds captured states plus client commit orders into a
// short hex string; two runs of one scenario must produce identical
// fingerprints (the seed-determinism contract).
func fingerprintStates(states []harness.ReplicaState, perClient [][]types.Digest) string {
	h := sha256.New()
	for _, st := range states {
		fmt.Fprintf(h, "%v|%d|", st.ID, st.Height)
		h.Write(blockSetKey(st, 0))
		h.Write(st.StateDigest[:])
	}
	for _, seq := range perClient {
		for _, d := range seq {
			h.Write(d[:])
		}
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
