// Package topology describes a multi-process RingBFT deployment: the shard
// shape, the per-node TCP addresses, the client addresses, and the shared
// key seed. Both cmd/ringbft-node and cmd/ringbft-client load the same JSON
// file, so one artifact defines the whole cluster.
//
// The file is the deployment's trust root: the key seed deterministically
// derives every node's HMAC pairs and Ed25519 identity (package crypto), so
// replicas that load the same file authenticate each other with no runtime
// key exchange. The invariant Parse enforces is completeness — every
// (shard, index) in the declared shape must have an address, and the shape
// must admit f >= 1 (n >= 4 per shard) — because a partial table would
// surface later as silent unknown-peer drops in the transport rather than
// as a startup error.
//
// Protecting gates: topology_test.go rejects malformed and incomplete
// files, and the harness' TCP suite boots real clusters from generated
// topologies on every CI run.
package topology

import (
	"encoding/json"
	"fmt"
	"os"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// Topology is the shared deployment description.
type Topology struct {
	Shards           int               `json:"shards"`
	ReplicasPerShard int               `json:"replicasPerShard"`
	Records          int               `json:"records"`
	Seed             int64             `json:"seed"`
	Nodes            map[string]string `json:"nodes"` // "shard/index" -> host:port
	// Clients maps client ids to their listen addresses so replicas can
	// dial Response messages back (tcpnet addresses peers by NodeID).
	Clients map[string]string `json:"clients,omitempty"`
}

// Load reads and validates a topology file.
func Load(path string) (*Topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw, path)
}

// Parse validates raw JSON topology content.
func Parse(raw []byte, path string) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if t.Shards < 1 || t.ReplicasPerShard < 4 {
		return nil, fmt.Errorf("topology needs >= 1 shard and >= 4 replicas/shard")
	}
	if t.Records <= 0 {
		t.Records = 4096
	}
	if t.Seed == 0 {
		t.Seed = 1
	}
	for s := 0; s < t.Shards; s++ {
		for i := 0; i < t.ReplicasPerShard; i++ {
			if _, ok := t.Nodes[Key(s, i)]; !ok {
				return nil, fmt.Errorf("topology missing address for node %d/%d", s, i)
			}
		}
	}
	return &t, nil
}

// Key formats the node-table key for (shard, index).
func Key(shard, index int) string { return fmt.Sprintf("%d/%d", shard, index) }

// Addrs converts the topology's node and client tables into NodeID-keyed
// addresses.
func (t *Topology) Addrs() map[types.NodeID]string {
	out := make(map[types.NodeID]string, len(t.Nodes)+len(t.Clients))
	for s := 0; s < t.Shards; s++ {
		for i := 0; i < t.ReplicasPerShard; i++ {
			out[types.ReplicaNode(types.ShardID(s), i)] = t.Nodes[Key(s, i)]
		}
	}
	for id, addr := range t.Clients {
		var c int
		if _, err := fmt.Sscanf(id, "%d", &c); err == nil {
			out[types.ClientNode(types.ClientID(c))] = addr
		}
	}
	return out
}

// Keygen builds the deployment's shared key material: every process derives
// identical keys from the topology seed. This stands in for a PKI — the
// seed file must be distributed out of band like any root of trust.
func (t *Topology) Keygen() *crypto.Keygen {
	kg := crypto.NewKeygen(t.Seed)
	for s := 0; s < t.Shards; s++ {
		for i := 0; i < t.ReplicasPerShard; i++ {
			kg.Register(types.ReplicaNode(types.ShardID(s), i))
		}
	}
	return kg
}

// ClientRing returns the key ring for client c: the replica key table plus
// the client's own identity, so the client can verify the pairwise MACs
// replicas put on Response messages (and replicas can verify the client's).
func (t *Topology) ClientRing(c types.ClientID) (*crypto.KeyRing, error) {
	kg := t.Keygen()
	id := types.ClientNode(c)
	kg.Register(id)
	return kg.Ring(id)
}
