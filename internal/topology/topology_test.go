package topology

import (
	"testing"

	"ringbft/internal/types"
)

func validJSON() []byte {
	return []byte(`{
		"shards": 1, "replicasPerShard": 4, "seed": 7,
		"nodes": {"0/0":"h:1","0/1":"h:2","0/2":"h:3","0/3":"h:4"}
	}`)
}

func TestParseValid(t *testing.T) {
	topo, err := Parse(validJSON(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Records != 4096 {
		t.Fatalf("Records default %d, want 4096", topo.Records)
	}
	addrs := topo.Addrs()
	if addrs[types.ReplicaNode(0, 2)] != "h:3" {
		t.Fatal("address mapping wrong")
	}
	if _, err := topo.Keygen().Ring(types.ReplicaNode(0, 3)); err != nil {
		t.Fatal("keygen did not register all replicas")
	}
}

func TestParseRejectsBadShapes(t *testing.T) {
	for _, raw := range []string{
		`{"shards":0,"replicasPerShard":4,"nodes":{}}`,
		`{"shards":1,"replicasPerShard":3,"nodes":{}}`,
		`{"shards":1,"replicasPerShard":4,"nodes":{"0/0":"a"}}`,
		`not json`,
	} {
		if _, err := Parse([]byte(raw), "test"); err == nil {
			t.Fatalf("accepted bad topology: %s", raw)
		}
	}
}
