package trace

import (
	"testing"
	"time"
)

// base is an arbitrary fixed epoch; the package never reads a clock, so
// tests construct timestamps explicitly.
var base = time.Unix(0, 0)

func at(ms int) time.Time { return base.Add(time.Duration(ms) * time.Millisecond) }

// TestSpanOrdering feeds phases out of order across two replica tracers
// and checks Merge + Breakdown reconstruct the canonical pipeline with
// the right per-phase gaps.
func TestSpanOrdering(t *testing.T) {
	leader := New(16)
	backup := New(16)
	// Span (0, 7): submit@0 → pre-prepare@2 → prepare@5 → commit@9 →
	// execute@14 → reply@15. Backup records its (later) pre-prepare and
	// commit too; Breakdown must keep the earliest per phase.
	leader.Record(at(2), 0, 7, PhasePrePrepare)
	leader.Record(at(5), 0, 7, PhasePrepare)
	leader.Record(at(9), 0, 7, PhaseCommit)
	leader.Record(at(14), 0, 7, PhaseExecute)
	leader.Record(at(15), 0, 7, PhaseReply)
	backup.Record(at(0), 0, 7, PhaseSubmit)
	backup.Record(at(3), 0, 7, PhasePrePrepare) // duplicate, later
	backup.Record(at(11), 0, 7, PhaseCommit)    // duplicate, later
	// Out-of-band event must not enter the chain.
	backup.Record(at(4), 0, 7, PhaseViewChange)

	events := Merge(leader.Events(), backup.Events())
	for i := 1; i < len(events); i++ {
		if events[i].At.Before(events[i-1].At) {
			t.Fatalf("merge not chronological at %d", i)
		}
	}
	bd := Breakdown(events)
	want := map[Phase]time.Duration{
		PhaseSubmit:     2 * time.Millisecond,
		PhasePrePrepare: 3 * time.Millisecond,
		PhasePrepare:    4 * time.Millisecond,
		PhaseCommit:     5 * time.Millisecond,
		PhaseExecute:    1 * time.Millisecond,
	}
	for ph, d := range want {
		ds := bd[ph]
		if len(ds) != 1 || ds[0] != d {
			t.Errorf("%v: got %v, want [%v]", ph, ds, d)
		}
	}
	if len(bd[PhaseViewChange]) != 0 {
		t.Errorf("view-change leaked into breakdown: %v", bd[PhaseViewChange])
	}
	if len(bd[PhaseReply]) != 0 {
		t.Errorf("reply is terminal, got gaps %v", bd[PhaseReply])
	}
}

func TestBreakdownSkipsMissingPhases(t *testing.T) {
	tr := New(8)
	// No prepare event recorded: commit gap attributes from pre-prepare.
	tr.Record(at(0), 1, 3, PhasePrePrepare)
	tr.Record(at(10), 1, 3, PhaseCommit)
	tr.Record(at(12), 1, 3, PhaseExecute)
	bd := Breakdown(tr.Events())
	if d := bd[PhasePrePrepare]; len(d) != 1 || d[0] != 10*time.Millisecond {
		t.Errorf("pre-prepare gap = %v, want [10ms]", d)
	}
	if len(bd[PhasePrepare]) != 0 {
		t.Errorf("missing phase produced gaps: %v", bd[PhasePrepare])
	}
}

func TestStalled(t *testing.T) {
	tr := New(32)
	// Span 1: completed (executes) — not stalled.
	tr.Record(at(0), 0, 1, PhasePrePrepare)
	tr.Record(at(5), 0, 1, PhaseExecute)
	// Span 2: wedged after prepare.
	tr.Record(at(0), 0, 2, PhasePrePrepare)
	tr.Record(at(3), 0, 2, PhasePrepare)
	// Span 3: wedged after commit (cross-shard waiting on forward).
	tr.Record(at(0), 1, 2, PhasePrePrepare)
	tr.Record(at(2), 1, 2, PhasePrepare)
	tr.Record(at(4), 1, 2, PhaseCommit)
	tr.Record(at(6), 1, 2, PhaseForward)
	st := Stalled(tr.Events())
	if st[PhasePrepare] != 1 {
		t.Errorf("prepare stalls = %d, want 1", st[PhasePrepare])
	}
	if st[PhaseForward] != 1 {
		t.Errorf("forward stalls = %d, want 1", st[PhaseForward])
	}
	if len(st) != 2 {
		t.Errorf("unexpected stall map: %v", st)
	}
}

// TestRingOverflow fills a small tracer past capacity and checks the
// oldest events are evicted, the newest retained, and eviction counted.
func TestRingOverflow(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Record(at(i), 0, uint64(i), PhaseExecute)
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if tr.Overwritten() != 6 {
		t.Fatalf("overwritten = %d, want 6", tr.Overwritten())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first after wrap)", i, e.Seq, want)
		}
	}
}

func TestQuantileHelper(t *testing.T) {
	var ds []time.Duration
	if Quantile(ds, 0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	if got := Quantile(ds, 0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := Quantile(ds, 0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := Quantile(ds, 1.0); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePrePrepare.String() != "pre-prepare" || PhaseStateTransfer.String() != "state-transfer" {
		t.Fatal("phase names wrong")
	}
}
