// Package trace records per-sequence consensus lifecycle spans: the
// phases a transaction batch passes through from client submission to
// reply, plus out-of-band view-change and state-transfer events.
//
// Events land in a bounded ring buffer so tracing is safe to leave on in
// production and in multi-hour chaos runs. The analysis half of the
// package (Breakdown, Stalled) turns raw events into per-phase latency
// distributions and stall attribution — "which phase wedged" — without
// the recording side paying for any of it.
//
// Like internal/metrics, this package never reads the wall clock: every
// event carries a caller-supplied timestamp, so deterministic hosts feed
// their virtual clocks and tracing cannot perturb seeded schedules.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Phase identifies a step of the consensus lifecycle.
type Phase uint8

const (
	// PhaseSubmit marks client submission (recorded by harness clients).
	PhaseSubmit Phase = iota
	// PhasePrePrepare marks acceptance of a PRE-PREPARE (leader: on
	// propose; backup: on verified receipt).
	PhasePrePrepare
	// PhasePrepare marks the prepared predicate (2f matching PREPAREs).
	PhasePrepare
	// PhaseCommit marks the committed predicate (2f+1 COMMITs).
	PhaseCommit
	// PhaseForward marks a ring-rotation hop: the forward certificate
	// for a cross-shard transaction leaving (or arriving at) a shard.
	PhaseForward
	// PhaseExecute marks execution against the store.
	PhaseExecute
	// PhaseReply marks the client reply send.
	PhaseReply
	// PhaseViewChange marks entry into a view change (out-of-band).
	PhaseViewChange
	// PhaseStateTransfer marks a state-transfer install (out-of-band).
	PhaseStateTransfer

	numPhases
)

var phaseNames = [numPhases]string{
	"submit", "pre-prepare", "prepare", "commit", "forward", "execute",
	"reply", "view-change", "state-transfer",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// chainOrder gives the canonical position of each pipeline phase; the
// out-of-band phases (view change, state transfer) are excluded from the
// latency chain.
func chainOrder(p Phase) (int, bool) {
	switch p {
	case PhaseSubmit, PhasePrePrepare, PhasePrepare, PhaseCommit,
		PhaseForward, PhaseExecute, PhaseReply:
		return int(p), true
	default:
		// PhaseViewChange and PhaseStateTransfer are out-of-band by design;
		// they have no position in the commit pipeline.
		return 0, false
	}
}

// Event is one recorded lifecycle step.
type Event struct {
	At    time.Time
	Shard int
	Seq   uint64
	Phase Phase
	Note  string
}

// DefaultCapacity is the ring-buffer size used by New when callers pass 0.
const DefaultCapacity = 4096

// Tracer is a bounded ring buffer of lifecycle events. Record is a mutex
// plus a slice store; when the buffer wraps, the oldest events are
// overwritten and counted, never silently lost.
type Tracer struct {
	mu          sync.Mutex
	buf         []Event
	next        int
	full        bool
	overwritten uint64
}

// New returns a tracer holding up to capacity events (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Record appends an event with a caller-supplied timestamp.
func (t *Tracer) Record(at time.Time, shard int, seq uint64, phase Phase) {
	t.RecordNote(at, shard, seq, phase, "")
}

// RecordNote appends an annotated event.
func (t *Tracer) RecordNote(at time.Time, shard int, seq uint64, phase Phase, note string) {
	t.mu.Lock()
	if t.full {
		t.overwritten++
	}
	t.buf[t.next] = Event{At: at, Shard: shard, Seq: seq, Phase: phase, Note: note}
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns the buffered events oldest-first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Overwritten reports how many events have been evicted by wraparound.
func (t *Tracer) Overwritten() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwritten
}

// Len reports the number of buffered events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Merge concatenates event batches (e.g. from one tracer per replica) and
// sorts them chronologically, breaking timestamp ties by shard, sequence,
// then phase so analysis over virtual clocks stays deterministic.
func Merge(batches ...[]Event) []Event {
	var n int
	for _, b := range batches {
		n += len(b)
	}
	out := make([]Event, 0, n)
	for _, b := range batches {
		out = append(out, b...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

type spanKey struct {
	shard int
	seq   uint64
}

// Breakdown computes per-phase latency: for every (shard, seq) span it
// takes the earliest timestamp of each pipeline phase and attributes to
// phase P the gap until the next pipeline phase present in that span.
// Out-of-band phases are ignored. The result maps each phase to the
// durations observed across all spans.
func Breakdown(events []Event) map[Phase][]time.Duration {
	spans := collectSpans(events)
	out := make(map[Phase][]time.Duration)
	keys := sortedKeys(spans)
	for _, k := range keys {
		ts := spans[k]
		prev := -1
		for i := 0; i < int(numPhases); i++ {
			if ts[i].IsZero() {
				continue
			}
			if prev >= 0 {
				d := ts[i].Sub(ts[prev])
				if d >= 0 {
					out[Phase(prev)] = append(out[Phase(prev)], d)
				}
			}
			prev = i
		}
	}
	return out
}

// Stalled attributes wedged spans: any span that never reached execute or
// reply counts against the last pipeline phase it did reach. The result
// answers "which phase wedged" after a fault.
func Stalled(events []Event) map[Phase]int {
	spans := collectSpans(events)
	out := make(map[Phase]int)
	for _, ts := range spans {
		if !ts[PhaseExecute].IsZero() || !ts[PhaseReply].IsZero() {
			continue
		}
		last := -1
		for i := 0; i < int(numPhases); i++ {
			if !ts[i].IsZero() {
				last = i
			}
		}
		if last >= 0 {
			out[Phase(last)]++
		}
	}
	return out
}

// collectSpans reduces events to the earliest timestamp of each pipeline
// phase per (shard, seq) span.
func collectSpans(events []Event) map[spanKey]*[numPhases]time.Time {
	spans := make(map[spanKey]*[numPhases]time.Time)
	for _, e := range events {
		if _, ok := chainOrder(e.Phase); !ok {
			continue
		}
		k := spanKey{e.Shard, e.Seq}
		ts := spans[k]
		if ts == nil {
			ts = new([numPhases]time.Time)
			spans[k] = ts
		}
		if ts[e.Phase].IsZero() || e.At.Before(ts[e.Phase]) {
			ts[e.Phase] = e.At
		}
	}
	return spans
}

func sortedKeys(spans map[spanKey]*[numPhases]time.Time) []spanKey {
	keys := make([]spanKey, 0, len(spans))
	for k := range spans {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shard != keys[j].shard {
			return keys[i].shard < keys[j].shard
		}
		return keys[i].seq < keys[j].seq
	})
	return keys
}

// Quantile returns the exact q-quantile of a duration sample (sorted copy;
// 0 when empty). Analysis-side helper for Breakdown output.
func Quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
