package protocols

import (
	"context"
	"time"

	"ringbft/internal/pbft"
	"ringbft/internal/types"
)

// RCCNode implements RCC's wait-free concurrent paradigm (Gupta et al., ICDE
// 2021): every replica acts as the primary of its own PBFT instance, so n
// consensus instances run concurrently and client load is spread across all
// replicas instead of funnelling through one primary. Clients address the
// replica whose instance will order their request (the harness routes by
// client id). Execution interleaves instances in (sequence, instance) order
// on each replica; instances with no traffic simply do not occupy rounds
// (the no-op filling of the full protocol is elided — benchmark clients
// saturate every instance).
type RCCNode struct {
	base
	engines  []*pbft.Engine
	trackers []*pbft.CheckpointTracker
	proposed map[types.Digest]struct{}
	decided  map[rccRound]*types.Batch
	nextExec map[int]types.SeqNum // per-instance executed watermark (stats)
	order    []rccRound
}

type rccRound struct {
	instance int
	seq      types.SeqNum
}

// NewRCC creates an RCC replica running one PBFT engine per instance.
func NewRCC(opts Options) *RCCNode {
	n := &RCCNode{
		base:     newBase(opts),
		proposed: make(map[types.Digest]struct{}),
		decided:  make(map[rccRound]*types.Batch),
		nextExec: make(map[int]types.SeqNum),
	}
	for i := range opts.Peers {
		inst := i
		// Instance i's "view 0 primary" must be replica i: rotate the peer
		// slice so engine i elects peers[(0+i) mod n] — achieved by fixing
		// the engine's view primaly mapping via rotated peers ordering is
		// unsafe for NodeID.Index; instead run each instance in a view
		// whose primary is replica i.
		e := pbft.New(0, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
			Send: func(to types.NodeID, m *types.Message) {
				cp := *m
				cp.Instance = inst
				n.send(to, &cp)
			},
			Committed: func(seq types.SeqNum, b *types.Batch, _ []types.Signed) {
				n.trackers[inst].Committed(n.engines[inst], seq, b)
				n.onDecided(inst, seq, b)
			},
		}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Verifier: n.verifier})
		n.engines = append(n.engines, e)
		n.trackers = append(n.trackers, pbft.NewCheckpointTracker(opts.Config.CheckpointInterval))
		n.bumpView(e, i)
	}
	return n
}

// bumpView advances engine e to the first view whose primary is replica i,
// giving each instance a distinct primary without touching engine internals.
func (n *RCCNode) bumpView(e *pbft.Engine, i int) {
	for int(uint64(e.View())%uint64(n.n)) != i {
		e.ForceView(e.View() + 1)
	}
}

// Run drives the replica until ctx is cancelled.
func (n *RCCNode) Run(ctx context.Context, inbox <-chan *types.Message) {
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			n.handle(m)
		case <-ticker.C:
			for _, e := range n.engines {
				e.Tick(n.clock())
			}
		}
	}
}

func (n *RCCNode) handle(m *types.Message) {
	if m == nil {
		return
	}
	if m.Type == types.MsgClientRequest {
		n.onClientRequest(m)
		return
	}
	if m.Instance < 0 || m.Instance >= len(n.engines) {
		return
	}
	n.engines[m.Instance].OnMessage(m)
}

// onClientRequest proposes in this replica's own instance — the multi
// primary property: any replica accepts client load directly.
func (n *RCCNode) onClientRequest(m *types.Message) {
	if m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if res, ok := n.executed[d]; ok {
		n.respond(types.ClientNode(m.Batch.Txns[0].ID.Client), d, res)
		return
	}
	if _, dup := n.proposed[d]; dup {
		return
	}
	inst := n.self.Index
	if _, err := n.engines[inst].Propose(m.Batch); err == nil {
		n.proposed[d] = struct{}{}
	}
}

// onDecided executes decided rounds in deterministic (seq, instance) order
// across all instances that have traffic.
func (n *RCCNode) onDecided(inst int, seq types.SeqNum, b *types.Batch) {
	n.decided[rccRound{inst, seq}] = b
	// Execute everything decided, walking rounds in (seq, instance) order;
	// rounds not yet decided are revisited on the next decision.
	for {
		progressed := false
		for i := 0; i < n.n; i++ {
			next := n.nextExec[i] + 1
			if nb, ok := n.decided[rccRound{i, next}]; ok {
				delete(n.decided, rccRound{i, next})
				n.nextExec[i] = next
				n.executeRCC(nb)
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

func (n *RCCNode) executeRCC(batch *types.Batch) {
	if len(batch.Txns) == 0 {
		return
	}
	d := batch.Digest()
	if _, done := n.executed[d]; done {
		return
	}
	results := make([]types.Value, len(batch.Txns))
	for i := range batch.Txns {
		results[i] = n.kv.ExecuteTxnPartial(&batch.Txns[i], 0, 1)
	}
	n.executed[d] = results
	n.chain.Append(types.SeqNum(n.chain.Height()+1), n.self, batch)
	n.respond(types.ClientNode(batch.Txns[0].ID.Client), d, results)
}
