// Package protocols implements the fully-replicated single-primary BFT
// baselines of Figure 1 — Pbft, Zyzzyva, Sbft, PoE, HotStuff, and Rcc — on
// the same replica/network substrate as RingBFT. Each runs one consensus
// group of n globally distributed replicas (no sharding); their normal-case
// message flows are implemented faithfully so that message complexity ×
// link latency, the quantity Figure 1 visualizes, is reproduced. View
// change is exercised through the Pbft baseline (the others share its
// fate under faults per their papers and are benchmarked fault-free, as in
// Figure 1).
//
// Invariants every baseline upholds: replicas of one group execute the same
// batches in the same sequence order, Send never blocks the event loop (the
// simnet/tcpnet contract), and client responses are only emitted for
// executed batches. The baselines deliberately share the types, crypto,
// store, and ledger substrate with RingBFT so Figure 1's comparison
// measures protocol message flow, not implementation divergence.
//
// Protecting gates: protocols_test.go commits workloads through every
// baseline and checks cross-replica agreement; the harness' Fig 1 path runs
// them on the simulated WAN each CI cycle; and the static analyzers
// (cmd/ringbft-vet) hold this package to the same verify-before-use and
// sorted-map-iteration rules as the protocol packages proper.
package protocols

import (
	"context"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/ledger"
	"ringbft/internal/store"
	"ringbft/internal/types"
)

// Sender abstracts the network.
type Sender func(to types.NodeID, m *types.Message)

// Node is the shape the harness drives.
type Node interface {
	Run(ctx context.Context, inbox <-chan *types.Message)
}

// Options configures one baseline replica.
type Options struct {
	Config types.Config // Shards must be 1
	Self   types.NodeID
	Peers  []types.NodeID
	Auth   crypto.Authenticator
	Send   Sender
	Clock  func() time.Time
}

// base carries the state shared by every baseline replica: the store, the
// ledger, in-order execution, and response plumbing.
type base struct {
	cfg   types.Config
	self  types.NodeID
	peers []types.NodeID
	n, f  int
	nf    int
	auth  crypto.Authenticator
	send  Sender
	clock func() time.Time

	verifier *crypto.Verifier

	kv    *store.KV
	chain *ledger.Chain

	execNext types.SeqNum
	ready    map[types.SeqNum]*types.Batch
	executed map[types.Digest][]types.Value
}

func newBase(opts Options) base {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	n := len(opts.Peers)
	f := (n - 1) / 3
	b := base{
		cfg:      opts.Config,
		self:     opts.Self,
		peers:    opts.Peers,
		n:        n,
		f:        f,
		nf:       n - f,
		auth:     opts.Auth,
		verifier: crypto.NewVerifier(opts.Auth, opts.Config.VerifyWorkers),
		send:     opts.Send,
		clock:    opts.Clock,
		kv:       store.NewKV(),
		chain:    ledger.NewChain(0),
		ready:    make(map[types.SeqNum]*types.Batch),
		executed: make(map[types.Digest][]types.Value),
	}
	return b
}

// Preload installs the replicated table.
func (b *base) Preload(records int) { b.kv.Preload(0, 1, records) }

// ViewChangeCount satisfies the harness statProvider (baselines are
// benchmarked fault-free; Pbft view changes go through package pbft).
func (b *base) ViewChangeCount() int64 { return 0 }

// RetransmitCount satisfies the harness statProvider.
func (b *base) RetransmitCount() int64 { return 0 }

// markReady queues a decided batch at seq and executes every contiguous
// decided sequence, answering clients.
func (b *base) markReady(seq types.SeqNum, batch *types.Batch) {
	b.ready[seq] = batch
	for {
		nb, ok := b.ready[b.execNext+1]
		if !ok {
			return
		}
		delete(b.ready, b.execNext+1)
		b.execNext++
		b.execute(b.execNext, nb)
	}
}

func (b *base) execute(seq types.SeqNum, batch *types.Batch) {
	if len(batch.Txns) == 0 {
		return
	}
	d := batch.Digest()
	if _, done := b.executed[d]; done {
		return
	}
	results := make([]types.Value, len(batch.Txns))
	for i := range batch.Txns {
		results[i] = b.kv.ExecuteTxnPartial(&batch.Txns[i], 0, 1)
	}
	b.executed[d] = results
	b.chain.Append(seq, b.peers[0], batch)
	b.respond(types.ClientNode(batch.Txns[0].ID.Client), d, results)
}

func (b *base) respond(client types.NodeID, d types.Digest, results []types.Value) {
	m := &types.Message{
		Type: types.MsgResponse, From: b.self, Digest: d, Results: results,
	}
	m.MAC = crypto.MACMessage(b.auth, client, m)
	b.send(client, m)
}

// broadcastMAC sends a per-recipient MAC'd copy of m to every peer but
// self. The canonical bytes are identical for every recipient, so they are
// built once for the whole broadcast.
func (b *base) broadcastMAC(m *types.Message) {
	var buf [types.SigBytesLen]byte
	sb := m.AppendSigBytes(buf[:0])
	for _, p := range b.peers {
		if p == b.self {
			continue
		}
		cp := *m
		cp.MAC = b.auth.MAC(p, sb)
		b.send(p, &cp)
	}
}

// verifyMAC checks m's pairwise MAC against its canonical bytes.
func (b *base) verifyMAC(m *types.Message) bool {
	return crypto.VerifyMessageMAC(b.auth, m) == nil
}

// verifyShareCert batch-verifies an aggregated certificate of signature
// shares on the shared verifier: entries must have the expected type, slot,
// and digest, come from distinct peers, and carry quorum valid signatures.
func (b *base) verifyShareCert(cert []types.Signed, typ types.MsgType, seq types.SeqNum, d types.Digest, quorum int) bool {
	seen := make(map[types.NodeID]struct{}, len(cert))
	entries := make([]*types.Signed, 0, len(cert))
	for i := range cert {
		s := &cert[i]
		if s.Type != typ || s.Seq != seq || s.Digest != d || !b.isPeer(s.From) {
			continue
		}
		if _, dup := seen[s.From]; dup {
			continue
		}
		seen[s.From] = struct{}{}
		entries = append(entries, s)
	}
	return b.verifier.VerifyQuorum(entries, quorum) >= quorum
}

func (b *base) isPeer(id types.NodeID) bool {
	return id.Kind == types.KindReplica && id.Shard == 0 &&
		id.Index >= 0 && id.Index < b.n
}

// runLoop is the common event loop.
func runLoop(ctx context.Context, inbox <-chan *types.Message, handle func(*types.Message)) {
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			handle(m)
		}
	}
}
