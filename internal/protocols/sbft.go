package protocols

import (
	"context"

	"ringbft/internal/types"
)

// SBFTNode implements Sbft's linear normal case (Gueta et al.): replicas
// send signature shares to a collector (the primary here) which aggregates
// them and broadcasts the combined certificate — turning both quadratic
// PBFT phases into linear collect/distribute rounds. Threshold signatures
// are modelled as the set of Ed25519 shares (the Cert field), preserving
// message counts and sizes.
type SBFTNode struct {
	base
	isPrimary bool
	nextSeq   types.SeqNum
	slots     map[types.SeqNum]*sbftSlot
}

type sbftSlot struct {
	digest     types.Digest
	batch      *types.Batch
	prepShares map[types.NodeID][]byte
	commShares map[types.NodeID][]byte
	fullPrep   bool
	fullComm   bool
	decided    bool
}

// NewSBFT creates an Sbft replica.
func NewSBFT(opts Options) *SBFTNode {
	return &SBFTNode{
		base:      newBase(opts),
		isPrimary: opts.Self.Index == 0,
		slots:     make(map[types.SeqNum]*sbftSlot),
	}
}

// Run drives the replica until ctx is cancelled.
func (s *SBFTNode) Run(ctx context.Context, inbox <-chan *types.Message) {
	runLoop(ctx, inbox, s.handle)
}

func (s *SBFTNode) slot(seq types.SeqNum) *sbftSlot {
	sl, ok := s.slots[seq]
	if !ok {
		sl = &sbftSlot{
			prepShares: make(map[types.NodeID][]byte),
			commShares: make(map[types.NodeID][]byte),
		}
		s.slots[seq] = sl
	}
	return sl
}

func (s *SBFTNode) handle(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		s.onClientRequest(m)
	case types.MsgPrePrepare:
		s.onPrePrepare(m)
	case types.MsgSbftPrepare:
		s.onShare(m, false)
	case types.MsgSbftFullPrep:
		s.onFull(m, false)
	case types.MsgSbftSignShare:
		s.onShare(m, true)
	case types.MsgSbftFullCommit:
		s.onFull(m, true)
	default:
		// Message types belonging to the other protocol families are
		// dropped: an SBFT node has no handler to misroute them to.
	}
}

func (s *SBFTNode) onClientRequest(m *types.Message) {
	if !s.isPrimary || m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if _, done := s.executed[d]; done {
		s.respond(types.ClientNode(m.Batch.Txns[0].ID.Client), d, s.executed[d])
		return
	}
	s.nextSeq++
	sl := s.slot(s.nextSeq)
	if sl.batch != nil {
		return
	}
	sl.batch, sl.digest = m.Batch, d
	pp := &types.Message{
		Type: types.MsgPrePrepare, From: s.self,
		Seq: s.nextSeq, Digest: d, Batch: m.Batch,
	}
	s.broadcastMAC(pp)
	// The collector registers its own prepare share.
	share := &types.Message{Type: types.MsgSbftPrepare, From: s.self, Seq: s.nextSeq, Digest: d}
	sl.prepShares[s.self] = s.auth.Sign(share.SigBytes())
	s.maybeAggregate(s.nextSeq, sl, false)
}

func (s *SBFTNode) onPrePrepare(m *types.Message) {
	if m.From != s.peers[0] || m.Batch == nil || !s.verifyMAC(m) || m.Batch.Digest() != m.Digest {
		return
	}
	sl := s.slot(m.Seq)
	if sl.batch != nil {
		return
	}
	sl.batch, sl.digest = m.Batch, m.Digest
	// Linear: the share goes only to the collector.
	share := &types.Message{Type: types.MsgSbftPrepare, From: s.self, Seq: m.Seq, Digest: m.Digest}
	share.Sig = s.auth.Sign(share.SigBytes())
	s.send(s.peers[0], share)
}

// onShare runs at the collector: accumulate signature shares, aggregate at
// nf, and distribute the combined message.
func (s *SBFTNode) onShare(m *types.Message, commit bool) {
	if !s.isPrimary || !s.isPeer(m.From) {
		return
	}
	if s.auth.Verify(m.From, m.SigBytes(), m.Sig) != nil {
		return
	}
	sl := s.slot(m.Seq)
	if sl.digest != m.Digest {
		return
	}
	if commit {
		sl.commShares[m.From] = m.Sig
	} else {
		sl.prepShares[m.From] = m.Sig
	}
	s.maybeAggregate(m.Seq, sl, commit)
}

func (s *SBFTNode) maybeAggregate(seq types.SeqNum, sl *sbftSlot, commit bool) {
	shares := sl.prepShares
	typ := types.MsgSbftFullPrep
	shareType := types.MsgSbftPrepare
	if commit {
		shares = sl.commShares
		typ = types.MsgSbftFullCommit
		shareType = types.MsgSbftSignShare
	}
	if len(shares) < s.nf || (commit && sl.fullComm) || (!commit && sl.fullPrep) {
		return
	}
	// Canonical share order: the certificate is broadcast, so its layout
	// must not depend on map iteration order.
	cert := make([]types.Signed, 0, s.nf)
	for _, from := range types.SortedNodeKeys(shares) {
		sig := shares[from]
		cert = append(cert, types.Signed{
			From: from, Type: shareType, Seq: seq, Digest: sl.digest, Sig: sig,
		})
		if len(cert) == s.nf {
			break
		}
	}
	full := &types.Message{Type: typ, From: s.self, Seq: seq, Digest: sl.digest, Cert: cert}
	s.broadcastMAC(full)
	if commit {
		sl.fullComm = true
		s.decide(seq, sl)
	} else {
		sl.fullPrep = true
		// Collector's own commit share.
		share := &types.Message{Type: types.MsgSbftSignShare, From: s.self, Seq: seq, Digest: sl.digest}
		sl.commShares[s.self] = s.auth.Sign(share.SigBytes())
		s.maybeAggregate(seq, sl, true)
	}
}

// onFull runs at replicas: a full-prepare triggers the commit share; a
// full-commit decides the slot. The aggregated certificate's nf signature
// shares are batch-verified on the shared verifier pool — a Byzantine
// collector cannot fabricate progress from thin air.
func (s *SBFTNode) onFull(m *types.Message, commit bool) {
	if m.From != s.peers[0] || !s.verifyMAC(m) || len(m.Cert) < s.nf {
		return
	}
	sl := s.slot(m.Seq)
	if sl.digest != m.Digest || sl.batch == nil {
		return
	}
	shareType := types.MsgSbftPrepare
	if commit {
		shareType = types.MsgSbftSignShare
	}
	if !s.verifyShareCert(m.Cert, shareType, m.Seq, m.Digest, s.nf) {
		return
	}
	if !commit {
		if sl.fullPrep {
			return
		}
		sl.fullPrep = true
		share := &types.Message{Type: types.MsgSbftSignShare, From: s.self, Seq: m.Seq, Digest: m.Digest}
		share.Sig = s.auth.Sign(share.SigBytes())
		s.send(s.peers[0], share)
		return
	}
	sl.fullComm = true
	s.decide(m.Seq, sl)
}

func (s *SBFTNode) decide(seq types.SeqNum, sl *sbftSlot) {
	if sl.decided || sl.batch == nil {
		return
	}
	sl.decided = true
	s.markReady(seq, sl.batch)
}
