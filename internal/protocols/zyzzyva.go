package protocols

import (
	"context"

	"ringbft/internal/types"
)

// ZyzzyvaNode implements Zyzzyva's speculative normal case (Kotla et al.):
// the primary assigns a sequence number and broadcasts an order request;
// replicas execute speculatively in order and respond to the client
// directly. The client completes when all 3f+1 speculative responses match
// (the harness requires n matching responses for Zyzzyva), which is why a
// single slow or faulty replica stalls it — the fragility the PoE paper
// targets. The client-driven commit-certificate path (2f+1 responses +
// LocalCommit) is implemented for completeness.
type ZyzzyvaNode struct {
	base
	isPrimary bool
	nextSeq   types.SeqNum
	seen      map[types.Digest]types.SeqNum
	certAcked map[types.Digest]struct{}
}

// NewZyzzyva creates a Zyzzyva replica.
func NewZyzzyva(opts Options) *ZyzzyvaNode {
	return &ZyzzyvaNode{
		base:      newBase(opts),
		isPrimary: opts.Self.Index == 0,
		seen:      make(map[types.Digest]types.SeqNum),
		certAcked: make(map[types.Digest]struct{}),
	}
}

// Run drives the replica until ctx is cancelled.
func (z *ZyzzyvaNode) Run(ctx context.Context, inbox <-chan *types.Message) {
	runLoop(ctx, inbox, z.handle)
}

func (z *ZyzzyvaNode) handle(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		z.onClientRequest(m)
	case types.MsgZyzOrderReq:
		z.onOrderReq(m)
	case types.MsgZyzCommitCert:
		z.onCommitCert(m)
	default:
		// Message types belonging to the other protocol families are
		// dropped: a Zyzzyva node has no handler to misroute them to.
	}
}

func (z *ZyzzyvaNode) onClientRequest(m *types.Message) {
	if !z.isPrimary || m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if _, dup := z.seen[d]; dup {
		return
	}
	z.nextSeq++
	z.seen[d] = z.nextSeq
	ord := &types.Message{
		Type: types.MsgZyzOrderReq, From: z.self,
		Seq: z.nextSeq, Digest: d, Batch: m.Batch,
	}
	z.broadcastMAC(ord)
	// The primary executes speculatively too.
	z.markReady(z.nextSeq, m.Batch)
}

func (z *ZyzzyvaNode) onOrderReq(m *types.Message) {
	if m.From != z.peers[0] || m.Batch == nil || !z.verifyMAC(m) {
		return
	}
	if m.Batch.Digest() != m.Digest {
		return
	}
	if prev, dup := z.seen[m.Digest]; dup && prev != m.Seq {
		return // conflicting order request
	}
	z.seen[m.Digest] = m.Seq
	// Speculative execution in sequence order; the spec-response to the
	// client is produced by base.execute.
	z.markReady(m.Seq, m.Batch)
}

// onCommitCert handles the slow path: a client that gathered only 2f+1
// matching speculative responses broadcasts a commit certificate; replicas
// acknowledge with a local commit so the client can complete.
func (z *ZyzzyvaNode) onCommitCert(m *types.Message) {
	if m.From.Kind != types.KindClient {
		return
	}
	if _, done := z.certAcked[m.Digest]; done {
		return
	}
	if _, known := z.seen[m.Digest]; !known {
		return
	}
	// Spec responses in this implementation authenticate to the client
	// with MACs (base.respond), so a certificate normally carries no
	// signed tuples and the replica acknowledges any digest it ordered
	// locally (z.seen) — the ack confirms local knowledge, nothing more.
	// If a sender does attach MsgZyzSpecResp-typed signed tuples they are
	// batch-verified rather than silently ignored; other entry types are
	// ignored as before so clients relaying what they gathered keep
	// their liveness.
	specEntries := 0
	for i := range m.Cert {
		if m.Cert[i].Type == types.MsgZyzSpecResp {
			specEntries++
		}
	}
	if specEntries > 0 && !z.verifyShareCert(m.Cert, types.MsgZyzSpecResp, m.Seq, m.Digest, z.f+1) {
		return
	}
	z.certAcked[m.Digest] = struct{}{}
	ack := &types.Message{Type: types.MsgZyzLocalCommit, From: z.self, Digest: m.Digest}
	ack.MAC = z.auth.MAC(m.From, ack.SigBytes())
	z.send(m.From, ack)
}
