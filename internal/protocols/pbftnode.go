package protocols

import (
	"context"
	"time"

	"ringbft/internal/pbft"
	"ringbft/internal/types"
)

// PBFTNode is the Pbft baseline: the three-phase Castro-Liskov protocol
// (package pbft) with in-order execution, over a fully replicated group.
// Two of its three phases are all-to-all, the quadratic cost Figure 1's
// single-primary cluster exhibits as n grows.
type PBFTNode struct {
	base
	engine      *pbft.Engine
	tracker     *pbft.CheckpointTracker
	proposed    map[types.Digest]struct{}
	queue       []*types.Batch // window-full backpressure buffer
	viewChanges int64
}

// NewPBFT creates a Pbft baseline replica.
func NewPBFT(opts Options) *PBFTNode {
	n := &PBFTNode{
		base:     newBase(opts),
		proposed: make(map[types.Digest]struct{}),
		tracker:  pbft.NewCheckpointTracker(opts.Config.CheckpointInterval),
	}
	n.engine = pbft.New(0, opts.Self, opts.Peers, opts.Auth, pbft.Callbacks{
		Send: func(to types.NodeID, m *types.Message) { n.send(to, m) },
		Committed: func(seq types.SeqNum, b *types.Batch, _ []types.Signed) {
			n.tracker.Committed(n.engine, seq, b)
			n.markReady(seq, b)
		},
		ViewChanged: func(types.View) { n.viewChanges++ },
	}, pbft.Options{Clock: opts.Clock, ViewTimeout: opts.Config.LocalTimeout, Verifier: n.verifier})
	return n
}

// ViewChangeCount reports installed view changes.
func (n *PBFTNode) ViewChangeCount() int64 { return n.viewChanges }

// Run drives the replica until ctx is cancelled.
func (n *PBFTNode) Run(ctx context.Context, inbox <-chan *types.Message) {
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m, ok := <-inbox:
			if !ok {
				return
			}
			n.handle(m)
		case <-ticker.C:
			n.engine.Tick(n.clock())
		}
	}
}

func (n *PBFTNode) handle(m *types.Message) {
	if m == nil {
		return
	}
	if m.Type == types.MsgClientRequest {
		n.onClientRequest(m)
		return
	}
	n.engine.OnMessage(m)
	n.drainQueue()
}

// drainQueue retries proposals parked while the log window was full.
func (n *PBFTNode) drainQueue() {
	if !n.engine.IsPrimary() || n.engine.InViewChange() {
		return
	}
	for len(n.queue) > 0 {
		b := n.queue[0]
		d := b.Digest()
		if _, done := n.proposed[d]; done {
			n.queue = n.queue[1:]
			continue
		}
		if _, err := n.engine.Propose(b); err != nil {
			return
		}
		n.proposed[d] = struct{}{}
		n.queue = n.queue[1:]
	}
}

func (n *PBFTNode) onClientRequest(m *types.Message) {
	if m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if res, ok := n.executed[d]; ok {
		n.respond(types.ClientNode(m.Batch.Txns[0].ID.Client), d, res)
		return
	}
	if _, done := n.proposed[d]; done {
		return
	}
	if n.engine.IsPrimary() {
		if _, err := n.engine.Propose(m.Batch); err == nil {
			n.proposed[d] = struct{}{}
		} else {
			n.queue = append(n.queue, m.Batch)
		}
	}
}
