package protocols

import (
	"context"

	"ringbft/internal/types"
)

// PoENode implements Proof-of-Execution's normal case (Gupta et al., EDBT
// 2021): the primary proposes, replicas exchange one all-to-all Support
// round (MACs, no signatures), and on nf supports execute *speculatively*
// and answer the client — dropping PBFT's commit phase entirely. Clients
// accept on nf matching responses.
type PoENode struct {
	base
	isPrimary bool
	nextSeq   types.SeqNum
	slots     map[types.SeqNum]*poeSlot
}

type poeSlot struct {
	digest   types.Digest
	batch    *types.Batch
	supports map[types.NodeID]struct{}
	sent     bool
	decided  bool
}

// NewPoE creates a PoE replica.
func NewPoE(opts Options) *PoENode {
	return &PoENode{
		base:      newBase(opts),
		isPrimary: opts.Self.Index == 0,
		slots:     make(map[types.SeqNum]*poeSlot),
	}
}

// Run drives the replica until ctx is cancelled.
func (p *PoENode) Run(ctx context.Context, inbox <-chan *types.Message) {
	runLoop(ctx, inbox, p.handle)
}

func (p *PoENode) slot(seq types.SeqNum) *poeSlot {
	sl, ok := p.slots[seq]
	if !ok {
		sl = &poeSlot{supports: make(map[types.NodeID]struct{})}
		p.slots[seq] = sl
	}
	return sl
}

func (p *PoENode) handle(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		p.onClientRequest(m)
	case types.MsgPoEPropose:
		p.onPropose(m)
	case types.MsgPoESupport:
		p.onSupport(m)
	default:
		// Message types belonging to the other protocol families are
		// dropped: a PoE node has no handler to misroute them to.
	}
}

func (p *PoENode) onClientRequest(m *types.Message) {
	if !p.isPrimary || m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if res, ok := p.executed[d]; ok {
		p.respond(types.ClientNode(m.Batch.Txns[0].ID.Client), d, res)
		return
	}
	p.nextSeq++
	sl := p.slot(p.nextSeq)
	if sl.batch != nil {
		return
	}
	sl.batch, sl.digest = m.Batch, d
	pp := &types.Message{Type: types.MsgPoEPropose, From: p.self, Seq: p.nextSeq, Digest: d, Batch: m.Batch}
	p.broadcastMAC(pp)
	p.support(p.nextSeq, sl)
}

func (p *PoENode) onPropose(m *types.Message) {
	if m.From != p.peers[0] || m.Batch == nil || !p.verifyMAC(m) || m.Batch.Digest() != m.Digest {
		return
	}
	sl := p.slot(m.Seq)
	if sl.batch != nil {
		return
	}
	sl.batch, sl.digest = m.Batch, m.Digest
	p.support(m.Seq, sl)
}

// support broadcasts this replica's Support vote (all-to-all, MACs only).
func (p *PoENode) support(seq types.SeqNum, sl *poeSlot) {
	if sl.sent {
		return
	}
	sl.sent = true
	sl.supports[p.self] = struct{}{}
	sup := &types.Message{Type: types.MsgPoESupport, From: p.self, Seq: seq, Digest: sl.digest}
	p.broadcastMAC(sup)
	p.maybeDecide(seq, sl)
}

func (p *PoENode) onSupport(m *types.Message) {
	if !p.isPeer(m.From) || !p.verifyMAC(m) {
		return
	}
	sl := p.slot(m.Seq)
	if !sl.digest.IsZero() && sl.digest != m.Digest {
		return
	}
	sl.supports[m.From] = struct{}{}
	p.maybeDecide(m.Seq, sl)
}

// maybeDecide speculatively executes once nf replicas support the proposal.
func (p *PoENode) maybeDecide(seq types.SeqNum, sl *poeSlot) {
	if sl.decided || sl.batch == nil || len(sl.supports) < p.nf {
		return
	}
	sl.decided = true
	p.markReady(seq, sl.batch)
}
