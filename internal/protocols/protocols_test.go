package protocols

import (
	"testing"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// bus is a deterministic in-memory network for one replica group + client.
type bus struct {
	t      *testing.T
	nodes  map[types.NodeID]interface{ HandleForTest(*types.Message) }
	queue  []routed
	client []*types.Message
	drop   func(to types.NodeID, m *types.Message) bool
}

type routed struct {
	to types.NodeID
	m  *types.Message
}

// HandleForTest adapters: every node type exposes its message handler.
func (n *PBFTNode) HandleForTest(m *types.Message)     { n.handle(m) }
func (z *ZyzzyvaNode) HandleForTest(m *types.Message)  { z.handle(m) }
func (s *SBFTNode) HandleForTest(m *types.Message)     { s.handle(m) }
func (p *PoENode) HandleForTest(m *types.Message)      { p.handle(m) }
func (h *HotStuffNode) HandleForTest(m *types.Message) { h.handle(m) }
func (n *RCCNode) HandleForTest(m *types.Message)      { n.handle(m) }

func newBus(t *testing.T, n int, mk func(Options) interface{ HandleForTest(*types.Message) }) *bus {
	t.Helper()
	b := &bus{t: t, nodes: make(map[types.NodeID]interface{ HandleForTest(*types.Message) })}
	peers := make([]types.NodeID, n)
	kg := crypto.NewKeygen(21)
	for i := range peers {
		peers[i] = types.ReplicaNode(0, i)
		kg.Register(peers[i])
	}
	cfg := types.DefaultConfig(1, n)
	for i := 0; i < n; i++ {
		id := peers[i]
		ring, err := kg.Ring(id)
		if err != nil {
			t.Fatal(err)
		}
		node := mk(Options{
			Config: cfg, Self: id, Peers: peers, Auth: ring,
			Send: func(to types.NodeID, m *types.Message) {
				b.queue = append(b.queue, routed{to, m})
			},
		})
		b.nodes[id] = node
	}
	return b
}

func (b *bus) pump() {
	for guard := 0; len(b.queue) > 0; guard++ {
		if guard > 100000 {
			b.t.Fatal("pump did not quiesce")
		}
		q := b.queue
		b.queue = nil
		for _, r := range q {
			if b.drop != nil && b.drop(r.to, r.m) {
				continue
			}
			if r.to.Kind == types.KindClient {
				b.client = append(b.client, r.m)
				continue
			}
			if n, ok := b.nodes[r.to]; ok {
				n.HandleForTest(r.m)
			}
		}
	}
}

func (b *bus) responses(d types.Digest) map[types.NodeID]struct{} {
	out := make(map[types.NodeID]struct{})
	for _, m := range b.client {
		if m.Type == types.MsgResponse && m.Digest == d {
			out[m.From] = struct{}{}
		}
	}
	return out
}

func reqBatch(seed uint64) *types.Batch {
	return &types.Batch{
		Txns: []types.Txn{{
			ID:     types.TxnID{Client: 1, Seq: seed},
			Reads:  []types.Key{types.Key(seed)},
			Writes: []types.Key{types.Key(seed)},
			Delta:  1,
		}},
		Involved: []types.ShardID{0},
	}
}

func (b *bus) submit(to types.NodeID, batch *types.Batch) {
	b.queue = append(b.queue, routed{to, &types.Message{
		Type: types.MsgClientRequest, From: types.ClientNode(1),
		Batch: batch, Digest: batch.Digest(),
	}})
	b.pump()
}

// runCommon submits k batches to `to` and asserts every one gets at least
// `need` distinct replica responses.
func runCommon(t *testing.T, b *bus, to types.NodeID, need, k int) {
	t.Helper()
	for i := 1; i <= k; i++ {
		batch := reqBatch(uint64(i))
		b.submit(to, batch)
		if got := len(b.responses(batch.Digest())); got < need {
			t.Fatalf("batch %d: %d responses, want >= %d", i, got, need)
		}
	}
}

func TestPBFTBaseline(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewPBFT(o)
		n.Preload(64)
		return n
	})
	runCommon(t, b, types.ReplicaNode(0, 0), 2, 5)
}

func TestZyzzyvaSpeculativeAllRespond(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewZyzzyva(o)
		n.Preload(64)
		return n
	})
	batch := reqBatch(1)
	b.submit(types.ReplicaNode(0, 0), batch)
	// Zyzzyva's fast path needs all 3f+1 speculative responses.
	if got := len(b.responses(batch.Digest())); got != 4 {
		t.Fatalf("%d speculative responses, want 4", got)
	}
}

func TestZyzzyvaCommitCertSlowPath(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewZyzzyva(o)
		n.Preload(64)
		return n
	})
	// One replica never sees the order request: client collects only 3
	// spec responses and falls back to a commit certificate.
	b.drop = func(to types.NodeID, m *types.Message) bool {
		return m.Type == types.MsgZyzOrderReq && to == types.ReplicaNode(0, 3)
	}
	batch := reqBatch(1)
	b.submit(types.ReplicaNode(0, 0), batch)
	if got := len(b.responses(batch.Digest())); got != 3 {
		t.Fatalf("%d spec responses with one dark replica, want 3", got)
	}
	// Client broadcasts the commit certificate; replicas that ordered the
	// request acknowledge with LocalCommit.
	cert := &types.Message{Type: types.MsgZyzCommitCert, From: types.ClientNode(1), Digest: batch.Digest()}
	for i := 0; i < 4; i++ {
		b.queue = append(b.queue, routed{types.ReplicaNode(0, i), cert})
	}
	b.pump()
	acks := 0
	for _, m := range b.client {
		if m.Type == types.MsgZyzLocalCommit && m.Digest == batch.Digest() {
			acks++
		}
	}
	if acks < 3 {
		t.Fatalf("%d local-commit acks, want >= 2f+1 = 3", acks)
	}
}

// TestZyzzyvaCommitCertSignedEntries covers the batch-verified slow path:
// a commit certificate carrying MsgZyzSpecResp-typed signed tuples is
// acknowledged when f+1 of them verify and rejected when they are forged.
func TestZyzzyvaCommitCertSignedEntries(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewZyzzyva(o)
		n.Preload(64)
		return n
	})
	batch := reqBatch(1)
	b.submit(types.ReplicaNode(0, 0), batch)
	d := batch.Digest()

	// Rebuild the bus's deterministic key material (same seed, same ids) to
	// craft signed spec-response tuples replicas can check.
	kg := crypto.NewKeygen(21)
	ids := make([]types.NodeID, 4)
	for i := range ids {
		ids[i] = types.ReplicaNode(0, i)
		kg.Register(ids[i])
	}
	mkCert := func(forge bool) []types.Signed {
		cert := make([]types.Signed, 0, 2)
		for i := 0; i < 2; i++ { // f+1 = 2 entries
			ring, err := kg.Ring(ids[i])
			if err != nil {
				t.Fatal(err)
			}
			e := types.Signed{From: ids[i], Type: types.MsgZyzSpecResp, Digest: d}
			e.Sig = ring.Sign(e.SigBytes())
			if forge {
				e.Sig[0] ^= 1
			}
			cert = append(cert, e)
		}
		return cert
	}
	acks := func() int {
		n := 0
		for _, m := range b.client {
			if m.Type == types.MsgZyzLocalCommit && m.Digest == d {
				n++
			}
		}
		return n
	}

	// Forged entries must not buy an acknowledgement.
	forged := &types.Message{Type: types.MsgZyzCommitCert, From: types.ClientNode(1), Digest: d, Cert: mkCert(true)}
	for i := 0; i < 4; i++ {
		b.queue = append(b.queue, routed{types.ReplicaNode(0, i), forged})
	}
	b.pump()
	if got := acks(); got != 0 {
		t.Fatalf("forged signed spec entries bought %d acks", got)
	}

	// Valid entries are acknowledged.
	valid := &types.Message{Type: types.MsgZyzCommitCert, From: types.ClientNode(1), Digest: d, Cert: mkCert(false)}
	for i := 0; i < 4; i++ {
		b.queue = append(b.queue, routed{types.ReplicaNode(0, i), valid})
	}
	b.pump()
	if got := acks(); got < 3 {
		t.Fatalf("%d local-commit acks for a valid signed certificate, want >= 3", got)
	}
}

func TestSBFTLinearCollector(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewSBFT(o)
		n.Preload(64)
		return n
	})
	runCommon(t, b, types.ReplicaNode(0, 0), 2, 5)
	// Linearity: no replica-to-replica all-to-all — every SbftPrepare and
	// SbftSignShare flows to the collector (replica 0). Count via a fresh
	// run with a recording drop hook.
	b2 := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewSBFT(o)
		n.Preload(64)
		return n
	})
	violations := 0
	b2.drop = func(to types.NodeID, m *types.Message) bool {
		if (m.Type == types.MsgSbftPrepare || m.Type == types.MsgSbftSignShare) && to != types.ReplicaNode(0, 0) {
			violations++
		}
		return false
	}
	b2.submit(types.ReplicaNode(0, 0), reqBatch(9))
	if violations != 0 {
		t.Fatalf("%d signature shares bypassed the collector", violations)
	}
}

func TestPoESpeculativeExecution(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewPoE(o)
		n.Preload(64)
		return n
	})
	// PoE needs nf = 3 matching responses.
	batch := reqBatch(1)
	b.submit(types.ReplicaNode(0, 0), batch)
	if got := len(b.responses(batch.Digest())); got < 3 {
		t.Fatalf("%d responses, want >= nf = 3", got)
	}
}

func TestHotStuffPhases(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewHotStuff(o)
		n.Preload(64)
		return n
	})
	runCommon(t, b, types.ReplicaNode(0, 0), 2, 5)
}

func TestHotStuffVotesAreLinear(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewHotStuff(o)
		n.Preload(64)
		return n
	})
	violations := 0
	b.drop = func(to types.NodeID, m *types.Message) bool {
		if m.Type == types.MsgHSVote && to != types.ReplicaNode(0, 0) {
			violations++
		}
		return false
	}
	b.submit(types.ReplicaNode(0, 0), reqBatch(3))
	if violations != 0 {
		t.Fatalf("%d votes went somewhere other than the leader", violations)
	}
}

func TestRCCMultiPrimary(t *testing.T) {
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewRCC(o)
		n.Preload(64)
		return n
	})
	// Each replica accepts client load in its own instance.
	for i := 0; i < 4; i++ {
		batch := reqBatch(uint64(10 + i))
		b.submit(types.ReplicaNode(0, i), batch)
		if got := len(b.responses(batch.Digest())); got < 2 {
			t.Fatalf("instance %d: %d responses, want >= 2", i, got)
		}
	}
}

func TestBaselinesExecuteInOrder(t *testing.T) {
	// All protocols must execute sequences contiguously: submit out of
	// band via PBFT and verify ledger growth matches.
	b := newBus(t, 4, func(o Options) interface{ HandleForTest(*types.Message) } {
		n := NewPBFT(o)
		n.Preload(64)
		return n
	})
	for i := 1; i <= 10; i++ {
		b.submit(types.ReplicaNode(0, 0), reqBatch(uint64(i)))
	}
	for id, n := range b.nodes {
		pn := n.(*PBFTNode)
		if got := pn.chain.Height(); got != 10 {
			t.Fatalf("replica %v ledger height %d, want 10", id, got)
		}
		if err := pn.chain.Verify(); err != nil {
			t.Fatalf("replica %v: %v", id, err)
		}
	}
}
