package protocols

import (
	"context"

	"ringbft/internal/types"
)

// HotStuffNode implements basic (non-chained) HotStuff's normal case (Yin et
// al.): a stable leader drives three linear vote rounds — prepare,
// pre-commit, commit — each a leader broadcast answered by replica votes to
// the leader, followed by a decide broadcast. Linear message complexity,
// but four sequential round trips per decision: at WAN latencies its
// throughput per instance is latency-bound, which is why it sits low in
// Figure 1 despite linearity. Independent sequence numbers pipeline freely.
type HotStuffNode struct {
	base
	isLeader bool
	nextSeq  types.SeqNum
	slots    map[types.SeqNum]*hsSlot
}

const hsPhases = 3 // prepare, pre-commit, commit; then decide

type hsSlot struct {
	digest  types.Digest
	batch   *types.Batch
	phase   int // leader: current vote round being collected
	votes   map[int]map[types.NodeID]struct{}
	voted   map[int]bool // replica: phases already voted
	decided bool
}

// NewHotStuff creates a HotStuff replica.
func NewHotStuff(opts Options) *HotStuffNode {
	return &HotStuffNode{
		base:     newBase(opts),
		isLeader: opts.Self.Index == 0,
		slots:    make(map[types.SeqNum]*hsSlot),
	}
}

// Run drives the replica until ctx is cancelled.
func (h *HotStuffNode) Run(ctx context.Context, inbox <-chan *types.Message) {
	runLoop(ctx, inbox, h.handle)
}

func (h *HotStuffNode) slot(seq types.SeqNum) *hsSlot {
	sl, ok := h.slots[seq]
	if !ok {
		sl = &hsSlot{
			votes: make(map[int]map[types.NodeID]struct{}),
			voted: make(map[int]bool),
			phase: 1,
		}
		h.slots[seq] = sl
	}
	return sl
}

func (h *HotStuffNode) handle(m *types.Message) {
	if m == nil {
		return
	}
	switch m.Type {
	case types.MsgClientRequest:
		h.onClientRequest(m)
	case types.MsgHSPropose:
		h.onPropose(m)
	case types.MsgHSVote:
		h.onVote(m)
	default:
		// Message types belonging to the other protocol families are
		// dropped: a HotStuff node has no handler to misroute them to.
	}
}

func (h *HotStuffNode) onClientRequest(m *types.Message) {
	if !h.isLeader || m.Batch == nil || len(m.Batch.Txns) == 0 {
		return
	}
	d := m.Batch.Digest()
	if res, ok := h.executed[d]; ok {
		h.respond(types.ClientNode(m.Batch.Txns[0].ID.Client), d, res)
		return
	}
	h.nextSeq++
	sl := h.slot(h.nextSeq)
	if sl.batch != nil {
		return
	}
	sl.batch, sl.digest = m.Batch, d
	h.broadcastPhase(h.nextSeq, sl, 1)
}

// broadcastPhase sends the leader's phase-k proposal (carrying the batch in
// phase 1, the QC implicitly thereafter) and registers the leader's vote.
func (h *HotStuffNode) broadcastPhase(seq types.SeqNum, sl *hsSlot, phase int) {
	m := &types.Message{
		Type: types.MsgHSPropose, From: h.self,
		Seq: seq, Digest: sl.digest, Instance: phase,
	}
	if phase == 1 {
		m.Batch = sl.batch
	}
	h.broadcastMAC(m)
	if phase > hsPhases {
		// Decide phase: leader executes.
		h.decide(seq, sl)
		return
	}
	sl.phase = phase
	h.recordVote(seq, sl, phase, h.self)
}

func (h *HotStuffNode) onPropose(m *types.Message) {
	if m.From != h.peers[0] || !h.verifyMAC(m) {
		return
	}
	sl := h.slot(m.Seq)
	if m.Instance == 1 {
		if m.Batch == nil || m.Batch.Digest() != m.Digest {
			return
		}
		if sl.batch == nil {
			sl.batch, sl.digest = m.Batch, m.Digest
		}
	}
	if sl.digest != m.Digest {
		return
	}
	if m.Instance > hsPhases {
		h.decide(m.Seq, sl)
		return
	}
	if sl.voted[m.Instance] {
		return
	}
	sl.voted[m.Instance] = true
	v := &types.Message{
		Type: types.MsgHSVote, From: h.self,
		Seq: m.Seq, Digest: m.Digest, Instance: m.Instance,
	}
	v.MAC = h.auth.MAC(h.peers[0], v.SigBytes())
	h.send(h.peers[0], v)
}

func (h *HotStuffNode) onVote(m *types.Message) {
	if !h.isLeader || !h.isPeer(m.From) || !h.verifyMAC(m) {
		return
	}
	sl := h.slot(m.Seq)
	if sl.digest != m.Digest {
		return
	}
	h.recordVote(m.Seq, sl, m.Instance, m.From)
}

func (h *HotStuffNode) recordVote(seq types.SeqNum, sl *hsSlot, phase int, from types.NodeID) {
	vs, ok := sl.votes[phase]
	if !ok {
		vs = make(map[types.NodeID]struct{})
		sl.votes[phase] = vs
	}
	vs[from] = struct{}{}
	if phase == sl.phase && len(vs) >= h.nf {
		h.broadcastPhase(seq, sl, phase+1)
	}
}

func (h *HotStuffNode) decide(seq types.SeqNum, sl *hsSlot) {
	if sl.decided || sl.batch == nil {
		return
	}
	sl.decided = true
	h.markReady(seq, sl.batch)
}
