package workload

import "testing"

func BenchmarkNextBatch100(b *testing.B) {
	g := New(Config{
		Shards: 15, ActiveRecords: 40000, CrossShardPct: 0.3,
		InvolvedShards: 15, BatchSize: 100, Seed: 1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.NextBatch(1)
	}
}
