// Package workload generates YCSB-style benchmark workloads (Section 8,
// "Benchmark"): read-modify-write transactions over an active set of
// records, batched by the client, with a configurable fraction of
// cross-shard transactions, a configurable number of involved shards per
// cross-shard transaction (consecutive shards, matching the paper's client
// behaviour), optional Zipfian skew, and optional remote-read dependencies
// that turn simple cst into complex cst (Section 8.8).
//
// The load-bearing invariant is seeded determinism: a Generator constructed
// with the same Config (including Seed) emits the same batch sequence,
// txn for txn, which is what makes harness runs reproducible, the chaos
// engine's fingerprints byte-stable across re-runs, and the pipelined
// determinism property (same arrivals, any PipelineDepth, identical blocks)
// testable at all. Every random draw flows from the Config seed; the
// package never reads the wall clock or global rand.
//
// Per-transaction IDs are (ClientID, monotonic seq), so replicas can
// deduplicate retransmissions and detect conflicting same-ID payloads
// (client-conflict evidence). BatchSize here is the *client request* size —
// under a pipelined primary (types.Config.PipelineDepth >= 1) requests
// smaller than the consensus BatchSize may be coalesced into one proposal;
// the generator itself never merges.
//
// Protecting gates: workload_test.go pins shard targeting, involved-set
// shape, striping, and per-client ID monotonicity; chaos.TestSeedDeterminism
// fails on any nondeterministic draw introduced here.
package workload

import (
	"math/rand"

	"ringbft/internal/types"
)

// Config parameterizes a workload generator.
type Config struct {
	Shards         int     // z
	ActiveRecords  int     // records per shard (paper: 600k total)
	CrossShardPct  float64 // fraction of batches that are cross-shard [0,1]
	InvolvedShards int     // shards accessed by each cross-shard txn (>=2)
	BatchSize      int     // transactions per batch
	RemoteReads    int     // extra remote-read dependencies per txn (complex cst)
	Zipf           bool    // Zipfian key skew instead of uniform
	ZipfS          float64 // Zipf skew parameter (default 1.01)
	// Stripe restricts each client to a disjoint stripe of the record
	// space. The paper's 600k-record uniform workload has a ~0.25%
	// per-batch conflict rate; a time-compressed simulation over a smaller
	// table would otherwise see pathological lock contention that the
	// paper's regime never enters (see EXPERIMENTS.md).
	Stripe  bool
	Clients int // stripe count when Stripe is set
	Seed    int64
}

// Generator produces batches. Not safe for concurrent use; give each client
// goroutine its own Generator (seeded distinctly).
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	zipf   *rand.Zipf
	seq    map[types.ClientID]uint64
	stripe map[types.ClientID]uint64 // per-client sequential stripe cursor
}

// New creates a Generator. Invalid fields are clamped to sane values.
func New(cfg Config) *Generator {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.ActiveRecords < 16 {
		cfg.ActiveRecords = 16
	}
	if cfg.BatchSize < 1 {
		cfg.BatchSize = 1
	}
	if cfg.InvolvedShards < 2 {
		cfg.InvolvedShards = 2
	}
	if cfg.InvolvedShards > cfg.Shards {
		cfg.InvolvedShards = cfg.Shards
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.01
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	g := &Generator{cfg: cfg, rng: rng, seq: make(map[types.ClientID]uint64), stripe: make(map[types.ClientID]uint64)}
	if cfg.Zipf {
		g.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.ActiveRecords-1))
	}
	return g
}

// recordIndex draws a record index in [0, ActiveRecords).
func (g *Generator) recordIndex() uint64 {
	if g.zipf != nil {
		return g.zipf.Uint64()
	}
	return uint64(g.rng.Intn(g.cfg.ActiveRecords))
}

// keyAt returns a key owned by shard s for client c: the table is hash
// partitioned with key ≡ shard (mod z), matching store.KV.Preload. Under
// Stripe, the record index is confined to client c's stripe.
func (g *Generator) keyAt(c types.ClientID, s types.ShardID) types.Key {
	var idx uint64
	if g.cfg.Stripe && g.cfg.Clients > 1 {
		// Walk the client's stripe sequentially: consecutive batches touch
		// disjoint records, so a client's in-flight window never
		// self-conflicts (the paper's 600k-record uniform regime).
		stripe := uint64(g.cfg.ActiveRecords) / uint64(g.cfg.Clients)
		if stripe == 0 {
			stripe = 1
		}
		cur := g.stripe[c]
		g.stripe[c] = cur + 1
		idx = (uint64(c)%uint64(g.cfg.Clients))*stripe + cur%stripe
	} else {
		idx = g.recordIndex()
	}
	return types.Key(uint64(s) + idx*uint64(g.cfg.Shards))
}

// NextBatch generates one batch for client c. All transactions in a batch
// access the same involved-shard set (Section 7: "we expect each block to
// include all the transactions that access the same shards"). Whether the
// batch is cross-shard is a Bernoulli draw with probability CrossShardPct.
func (g *Generator) NextBatch(c types.ClientID) *types.Batch {
	cross := g.cfg.Shards > 1 && g.rng.Float64() < g.cfg.CrossShardPct
	var involved []types.ShardID
	if cross {
		involved = g.involvedSet()
	} else {
		involved = []types.ShardID{types.ShardID(g.rng.Intn(g.cfg.Shards))}
	}
	b := &types.Batch{Involved: involved, Txns: make([]types.Txn, 0, g.cfg.BatchSize)}
	for i := 0; i < g.cfg.BatchSize; i++ {
		b.Txns = append(b.Txns, g.nextTxn(c, involved))
	}
	return b
}

// involvedSet picks InvolvedShards consecutive shards starting at a random
// position — "our clients select consecutive shards in order to generate the
// workload" (Section 8.5) — then sorts them into ring order.
func (g *Generator) involvedSet() []types.ShardID {
	start := g.rng.Intn(g.cfg.Shards)
	k := g.cfg.InvolvedShards
	set := make([]types.ShardID, 0, k)
	for i := 0; i < k; i++ {
		set = append(set, types.ShardID((start+i)%g.cfg.Shards))
	}
	// Ring order = ascending identifiers (Section 3, "Ring Order").
	for i := 1; i < len(set); i++ {
		for j := i; j > 0 && set[j] < set[j-1]; j-- {
			set[j], set[j-1] = set[j-1], set[j]
		}
	}
	return set
}

// nextTxn builds one read-modify-write transaction touching exactly one
// key-value pair per involved shard ("if a transaction accesses three
// regions, then it accesses three key-value pairs", Section 8), plus
// RemoteReads extra read-only dependencies scattered over the involved set.
func (g *Generator) nextTxn(c types.ClientID, involved []types.ShardID) types.Txn {
	g.seq[c]++
	t := types.Txn{
		ID:    types.TxnID{Client: c, Seq: g.seq[c]},
		Delta: types.Value(g.rng.Intn(1000) + 1),
	}
	for _, s := range involved {
		k := g.keyAt(c, s)
		t.Reads = append(t.Reads, k)
		t.Writes = append(t.Writes, k)
	}
	for i := 0; i < g.cfg.RemoteReads; i++ {
		s := involved[g.rng.Intn(len(involved))]
		t.Reads = append(t.Reads, g.keyAt(c, s))
	}
	return t
}
