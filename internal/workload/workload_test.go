package workload

import (
	"testing"

	"ringbft/internal/types"
)

func TestSingleShardBatches(t *testing.T) {
	g := New(Config{Shards: 4, ActiveRecords: 1000, CrossShardPct: 0, BatchSize: 10, Seed: 1})
	for i := 0; i < 50; i++ {
		b := g.NextBatch(1)
		if b.IsCrossShard() {
			t.Fatal("0% cross-shard produced a cst")
		}
		if len(b.Txns) != 10 {
			t.Fatalf("batch size %d, want 10", len(b.Txns))
		}
		s := b.Involved[0]
		for _, tx := range b.Txns {
			for _, k := range append(tx.Reads, tx.Writes...) {
				if types.OwnerShard(k, 4) != s {
					t.Fatalf("single-shard txn touches foreign key %d", k)
				}
			}
		}
	}
}

func TestCrossShardRate(t *testing.T) {
	g := New(Config{Shards: 4, ActiveRecords: 1000, CrossShardPct: 0.5, InvolvedShards: 3, BatchSize: 1, Seed: 2})
	cross := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if g.NextBatch(1).IsCrossShard() {
			cross++
		}
	}
	rate := float64(cross) / n
	if rate < 0.42 || rate > 0.58 {
		t.Fatalf("cross-shard rate %.2f, want ~0.5", rate)
	}
}

func TestInvolvedSetConsecutiveAndSorted(t *testing.T) {
	g := New(Config{Shards: 6, ActiveRecords: 1000, CrossShardPct: 1, InvolvedShards: 3, BatchSize: 1, Seed: 3})
	for i := 0; i < 100; i++ {
		b := g.NextBatch(1)
		if len(b.Involved) != 3 {
			t.Fatalf("involved %d shards, want 3", len(b.Involved))
		}
		for j := 1; j < len(b.Involved); j++ {
			if b.Involved[j] <= b.Involved[j-1] {
				t.Fatal("involved set not in ring order")
			}
		}
		// Consecutive modulo z: the set {s, s+1, s+2} mod 6 for some s.
		present := map[types.ShardID]bool{}
		for _, s := range b.Involved {
			present[s] = true
		}
		found := false
		for s := 0; s < 6; s++ {
			if present[types.ShardID(s)] && present[types.ShardID((s+1)%6)] && present[types.ShardID((s+2)%6)] {
				found = true
			}
		}
		if !found {
			t.Fatalf("involved set %v is not consecutive", b.Involved)
		}
	}
}

func TestOneKeyPerInvolvedShard(t *testing.T) {
	// "if a transaction accesses three regions, then it accesses three
	// key-value pairs" (Section 8).
	g := New(Config{Shards: 5, ActiveRecords: 1000, CrossShardPct: 1, InvolvedShards: 3, BatchSize: 1, Seed: 4})
	b := g.NextBatch(1)
	tx := b.Txns[0]
	if len(tx.Writes) != 3 {
		t.Fatalf("txn writes %d keys, want 3", len(tx.Writes))
	}
	seen := map[types.ShardID]int{}
	for _, k := range tx.Writes {
		seen[types.OwnerShard(k, 5)]++
	}
	for _, s := range b.Involved {
		if seen[s] != 1 {
			t.Fatalf("shard %d has %d write keys, want 1", s, seen[s])
		}
	}
}

func TestRemoteReadsAdded(t *testing.T) {
	g := New(Config{Shards: 3, ActiveRecords: 1000, CrossShardPct: 1, InvolvedShards: 3, BatchSize: 1, RemoteReads: 8, Seed: 5})
	tx := g.NextBatch(1).Txns[0]
	if len(tx.Reads) != 3+8 {
		t.Fatalf("txn has %d reads, want 11 (3 RMW + 8 dependencies)", len(tx.Reads))
	}
	// All dependency reads stay inside the involved set.
	for _, k := range tx.Reads {
		owner := types.OwnerShard(k, 3)
		found := false
		for _, s := range tx.InvolvedShards(3) {
			if s == owner {
				found = true
			}
		}
		if !found {
			t.Fatalf("read %d outside involved shards", k)
		}
	}
}

func TestTxnIDsMonotonicPerClient(t *testing.T) {
	g := New(Config{Shards: 2, ActiveRecords: 100, BatchSize: 3, Seed: 6})
	var last uint64
	for i := 0; i < 10; i++ {
		for _, tx := range g.NextBatch(7).Txns {
			if tx.ID.Client != 7 {
				t.Fatalf("txn client %d, want 7", tx.ID.Client)
			}
			if tx.ID.Seq <= last {
				t.Fatal("txn sequence not monotonic")
			}
			last = tx.ID.Seq
		}
	}
}

func TestStripeDisjointAcrossClients(t *testing.T) {
	cfg := Config{Shards: 2, ActiveRecords: 1000, CrossShardPct: 0, BatchSize: 5, Stripe: true, Clients: 10, Seed: 7}
	g1, g2 := New(cfg), New(cfg)
	keys1 := map[types.Key]bool{}
	for i := 0; i < 20; i++ {
		for _, tx := range g1.NextBatch(1).Txns {
			for _, k := range tx.Writes {
				keys1[k] = true
			}
		}
	}
	for i := 0; i < 20; i++ {
		for _, tx := range g2.NextBatch(2).Txns {
			for _, k := range tx.Writes {
				if keys1[k] {
					t.Fatalf("striped clients 1 and 2 share key %d", k)
				}
			}
		}
	}
}

func TestStripeSequentialNoSelfConflictWithinWindow(t *testing.T) {
	cfg := Config{Shards: 1, ActiveRecords: 1000, CrossShardPct: 0, BatchSize: 4, Stripe: true, Clients: 10, Seed: 8}
	g := New(cfg)
	seen := map[types.Key]bool{}
	// A window of consecutive batches must not repeat keys while the
	// cursor has not wrapped the stripe (stripe = 100 records here).
	for i := 0; i < 20; i++ { // 20 batches x 4 keys = 80 < 100
		for _, tx := range g.NextBatch(3).Txns {
			for _, k := range tx.Writes {
				if seen[k] {
					t.Fatalf("key %d repeated within stripe window", k)
				}
				seen[k] = true
			}
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Config{Shards: 1, ActiveRecords: 10000, BatchSize: 1, Zipf: true, Seed: 9})
	counts := map[types.Key]int{}
	for i := 0; i < 5000; i++ {
		counts[g.NextBatch(1).Txns[0].Writes[0]]++
	}
	// The hottest key must be dramatically hotter than uniform (0.5 avg).
	maxN := 0
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	if maxN < 50 {
		t.Fatalf("hottest key seen %d times; Zipf skew not applied", maxN)
	}
}

func TestConfigClamping(t *testing.T) {
	g := New(Config{Shards: 0, ActiveRecords: 0, BatchSize: 0, InvolvedShards: 99, CrossShardPct: 1})
	b := g.NextBatch(1)
	if len(b.Txns) != 1 {
		t.Fatalf("clamped batch size produced %d txns", len(b.Txns))
	}
}
