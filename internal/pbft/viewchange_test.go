package pbft

import (
	"testing"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// justState is the host-level justification layer for a harness: which batch
// digests each replica holds local evidence for (a RingBFT Forward quorum, an
// AHL committee certificate), the transferable certificates backing them, and
// the UnjustifiedNewView rejections each replica reported.
type justState struct {
	voucher     types.NodeID
	voucherRing *crypto.KeyRing
	vouched     []map[types.Digest]bool
	certs       map[types.Digest][]types.Signed
	unjust      map[int][]types.PreparedProof
}

// vouch mints the transferable certificate for b and records local evidence
// at the given replicas (the rest must rely on the carried certificate).
func (js *justState) vouch(b *types.Batch, replicas ...int) {
	d := b.Digest()
	s := types.Signed{From: js.voucher, Type: types.MsgForward, Shard: 0, Digest: d}
	s.Sig = js.voucherRing.Sign(s.SigBytes())
	js.certs[d] = []types.Signed{s}
	for _, i := range replicas {
		js.vouched[i][d] = true
	}
}

// newJustifiedHarness wires n engines whose proposal paths are gated on
// host-level justification, mirroring how ringbft/ahl/sharper hosts install
// the Justify/Justification/VerifyJustification callbacks. It also returns
// the per-replica key rings so tests can forge Byzantine messages.
func newJustifiedHarness(t *testing.T, n int) (*harness, *justState, []*crypto.KeyRing) {
	t.Helper()
	h := &harness{t: t, n: n, shard: 0, commits: make(map[int][]commitRec), views: make(map[int][]types.View)}
	js := &justState{
		voucher: types.ReplicaNode(1, 0),
		vouched: make([]map[types.Digest]bool, n),
		certs:   make(map[types.Digest][]types.Signed),
		unjust:  make(map[int][]types.PreparedProof),
	}
	peers := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		peers[i] = types.ReplicaNode(0, i)
	}
	kg := crypto.NewKeygen(7)
	for _, p := range peers {
		kg.Register(p)
	}
	kg.Register(js.voucher)
	var err error
	if js.voucherRing, err = kg.Ring(js.voucher); err != nil {
		t.Fatal(err)
	}
	rings := make([]*crypto.KeyRing, n)
	for i := 0; i < n; i++ {
		i := i
		js.vouched[i] = make(map[types.Digest]bool)
		if rings[i], err = kg.Ring(peers[i]); err != nil {
			t.Fatal(err)
		}
		ring := rings[i]
		e := New(0, peers[i], peers, ring, Callbacks{
			Send: func(to types.NodeID, m *types.Message) {
				if h.drop != nil && h.drop(m.From, to, m) {
					return
				}
				h.queue = append(h.queue, routed{to, m})
			},
			Committed: func(seq types.SeqNum, b *types.Batch, cert []types.Signed) {
				h.commits[i] = append(h.commits[i], commitRec{seq, b.Digest(), b, cert})
			},
			ViewChanged: func(v types.View) {
				h.views[i] = append(h.views[i], v)
			},
			Justify: func(b *types.Batch) bool {
				return len(b.Txns) == 0 || js.vouched[i][b.Digest()]
			},
			Justification: func(b *types.Batch) []types.Signed {
				if !js.vouched[i][b.Digest()] {
					return nil
				}
				return js.certs[b.Digest()]
			},
			VerifyJustification: func(b *types.Batch, cert []types.Signed) bool {
				for k := range cert {
					s := &cert[k]
					if s.From == js.voucher && s.Digest == b.Digest() &&
						ring.Verify(s.From, s.SigBytes(), s.Sig) == nil {
						return true
					}
				}
				return false
			},
			UnjustifiedNewView: func(m *types.Message, p types.PreparedProof) {
				js.unjust[i] = append(js.unjust[i], p)
			},
		}, Options{})
		h.engines = append(h.engines, e)
	}
	return h, js, rings
}

// TestNewViewCarriesJustification: a batch prepared under a Forward-style
// certificate must survive a view change even at a replica that never
// obtained the certificate locally — the NewView re-proposal carries it, the
// receiver verifies it, and commits the byte-identical batch in the new view.
func TestNewViewCarriesJustification(t *testing.T) {
	h, js, _ := newJustifiedHarness(t, 4)
	b := batchOf(5)
	js.vouch(b, 0, 1, 2) // replica 3's Forward quorum never completed

	// Prepare everywhere it can, but let no replica commit in view 0.
	h.drop = func(from, to types.NodeID, m *types.Message) bool {
		return m.Type == types.MsgCommit
	}
	if _, err := h.engines[0].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if len(h.commits[i]) != 0 {
			t.Fatalf("replica %d committed prematurely", i)
		}
	}

	h.drop = nil
	for i := 0; i < 4; i++ {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if got := h.engines[i].View(); got != 1 {
			t.Fatalf("replica %d view = %d, want 1", i, got)
		}
		found := false
		for _, c := range h.commits[i] {
			if c.digest == b.Digest() {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %d lost the justified batch across the view change", i)
		}
	}
	if len(js.unjust[3]) != 0 {
		t.Fatalf("replica 3 flagged a justified NewView: %+v", js.unjust[3])
	}
}

// TestUnjustifiedNewViewRejected: a Byzantine new primary injects a batch no
// certificate vouches for through the NewView re-proposal path. Honest
// receivers must reject the whole NewView, surface the offending proof
// through UnjustifiedNewView (the hosts' evidence hook), and escalate past
// the faulty primary to a view that recovers liveness.
func TestUnjustifiedNewViewRejected(t *testing.T) {
	h, js, rings := newJustifiedHarness(t, 4)

	// Capture the signed ViewChange messages for view 1 while keeping them
	// away from replica 1 — the Byzantine primary-elect must not assemble an
	// honest NewView before we forge ours.
	captured := make(map[types.NodeID]*types.Message)
	h.drop = func(from, to types.NodeID, m *types.Message) bool {
		if m.Type == types.MsgViewChange && m.View == 1 {
			captured[m.From] = m
		}
		return to == types.ReplicaNode(0, 1)
	}
	for _, i := range []int{0, 2, 3} {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	if len(captured) < 3 {
		t.Fatalf("captured %d view-change messages, want 3", len(captured))
	}

	// Forge replica 1's NewView: the quorum justification is genuine, but the
	// re-proposal smuggles in an unjustified batch with no certificate.
	evil := batchOf(99)
	nv := &types.Message{
		Type: types.MsgNewView, From: types.ReplicaNode(0, 1), Shard: 0, View: 1,
		Prepared: []types.PreparedProof{
			{View: 0, Seq: 1, Digest: evil.Digest(), Batch: evil},
		},
	}
	for _, from := range types.SortedNodeKeys(captured) {
		vc := captured[from]
		nv.ViewMsgs = append(nv.ViewMsgs, types.Signed{
			From: from, Type: types.MsgViewChange, Shard: 0,
			View: vc.View, Seq: vc.StableSeq, Sig: vc.Sig,
		})
	}
	nv.Sig = rings[1].Sign(nv.SigBytes())

	h.engines[2].OnMessage(nv)
	if got := h.engines[2].View(); got != 0 {
		t.Fatalf("replica 2 installed the unjustified view: view = %d", got)
	}
	if !h.engines[2].InViewChange() {
		t.Fatal("replica 2 abandoned its view change")
	}
	if len(js.unjust[2]) != 1 || js.unjust[2][0].Digest != evil.Digest() {
		t.Fatalf("UnjustifiedNewView evidence missing or wrong: %+v", js.unjust[2])
	}

	// Escalation recovers: the stalled view change times out, the honest
	// replicas target view 2, and its primary (replica 2) restores liveness.
	later := time.Now().Add(time.Second)
	for _, i := range []int{0, 2, 3} {
		h.engines[i].Tick(later)
	}
	h.pump()
	for _, i := range []int{0, 2, 3} {
		if got := h.engines[i].View(); got != 2 {
			t.Fatalf("replica %d view = %d, want 2", i, got)
		}
		if h.engines[i].InViewChange() {
			t.Fatalf("replica %d still in view change", i)
		}
	}
	b := batchOf(7)
	js.vouch(b, 0, 1, 2, 3)
	if !h.engines[2].IsPrimary() {
		t.Fatal("replica 2 should be primary of view 2")
	}
	if _, err := h.engines[2].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for _, i := range []int{0, 2, 3} {
		found := false
		for _, c := range h.commits[i] {
			if c.digest == b.Digest() {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %d did not commit after escalation", i)
		}
		for _, c := range h.commits[i] {
			if c.digest == evil.Digest() {
				t.Fatalf("replica %d committed the unjustified batch", i)
			}
		}
	}
}
