package pbft

import (
	"crypto/sha256"
	"encoding/binary"

	"ringbft/internal/types"
)

// CheckpointTracker drives periodic checkpoints for a host that consumes
// engine commits (possibly out of order): it tracks the contiguous committed
// prefix, folds batch digests into a rolling prefix digest — deterministic
// across replicas because the log is agreed — and calls MakeCheckpoint every
// interval sequences so the engine's watermark window keeps sliding and the
// log is garbage-collected. Every host embedding an Engine needs one (or an
// equivalent, like ringbft's lock-queue-integrated variant); without
// checkpoints a long-running primary exhausts its proposal window and
// throughput collapses to zero.
type CheckpointTracker struct {
	interval types.SeqNum
	next     types.SeqNum // highest contiguous committed sequence
	pending  map[types.SeqNum]types.Digest
	prefix   types.Digest
	last     types.SeqNum
}

// NewCheckpointTracker creates a tracker checkpointing every interval
// sequences (0 defaults to 64).
func NewCheckpointTracker(interval types.SeqNum) *CheckpointTracker {
	if interval == 0 {
		interval = 64
	}
	return &CheckpointTracker{
		interval: interval,
		pending:  make(map[types.SeqNum]types.Digest),
	}
}

// Committed records a commit at seq and emits a checkpoint through e when
// the contiguous prefix crosses the next interval boundary.
func (t *CheckpointTracker) Committed(e *Engine, seq types.SeqNum, batch *types.Batch) {
	t.pending[seq] = batch.Digest()
	for {
		d, ok := t.pending[t.next+1]
		if !ok {
			break
		}
		delete(t.pending, t.next+1)
		t.next++
		t.prefix = FoldStep(t.prefix, t.next, d)
		// Checkpoints must land on exact interval boundaries: replicas
		// drain their contiguous prefixes in different-sized bursts, and
		// only votes for the *same* sequence number can form a quorum.
		if t.next == t.last+t.interval {
			t.last = t.next
			e.MakeCheckpoint(t.next, t.prefix)
		}
	}
}

// FoldStep extends a rolling commit-prefix digest with the batch digest
// committed at seq. Exposed so hosts can re-derive a peer's certified prefix
// from shipped blocks during catch-up: starting from their own contiguous
// fold, one FoldStep per sequence (batch digest for shipped blocks, the
// empty-batch digest for view-change no-op gaps) must land exactly on the
// digest nf replicas signed — anything a Byzantine responder substituted
// breaks the chain.
func FoldStep(prefix types.Digest, seq types.SeqNum, d types.Digest) types.Digest {
	var buf [72]byte
	copy(buf[:32], prefix[:])
	copy(buf[32:64], d[:])
	binary.BigEndian.PutUint64(buf[64:], uint64(seq))
	return sha256.Sum256(buf[:])
}

// Advance repositions the tracker at a transferred checkpoint: the host
// validated (via FoldStep against an nf-signed certificate) that the shard's
// fold at seq is prefix, and installed the corresponding blocks. Pending
// digests the transfer covered are dropped; the emission boundary moves so
// the next checkpoint fires at the next interval crossing, not for the
// boundaries the transfer skipped over.
func (t *CheckpointTracker) Advance(seq types.SeqNum, prefix types.Digest) {
	if seq <= t.next {
		return
	}
	t.next = seq
	t.prefix = prefix
	for s := range t.pending {
		if s <= seq {
			delete(t.pending, s)
		}
	}
	if boundary := seq - seq%t.interval; boundary > t.last {
		t.last = boundary
	}
}

// Prefix returns the current rolling prefix digest (for tests).
func (t *CheckpointTracker) Prefix() types.Digest { return t.prefix }

// Next returns the contiguous committed watermark (for tests).
func (t *CheckpointTracker) Next() types.SeqNum { return t.next }
