package pbft

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/raceflag"
	"ringbft/internal/simnet"
	"ringbft/internal/types"
)

// TestLiveWindowSliding drives four engines over the concurrent simulated
// network (goroutines, real timing) far past the watermark window to verify
// checkpoints keep the log sliding outside the deterministic harness.
func TestLiveWindowSliding(t *testing.T) {
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency{D: 200 * time.Microsecond}})
	defer net.Close()
	kg := crypto.NewKeygen(3)
	peers := make([]types.NodeID, 4)
	for i := range peers {
		peers[i] = types.ReplicaNode(0, i)
		kg.Register(peers[i])
	}
	type nodeState struct {
		mu      sync.Mutex
		engine  *Engine
		tracker *CheckpointTracker
		commits atomic.Int64
	}
	nodes := make([]*nodeState, 4)
	eps := make([]*simnet.Endpoint, 4)
	for i := range peers {
		i := i
		ns := &nodeState{tracker: NewCheckpointTracker(64)}
		ep := net.Attach(peers[i], 0)
		ring, _ := kg.Ring(peers[i])
		ns.engine = New(0, peers[i], peers, ring, Callbacks{
			Send: func(to types.NodeID, m *types.Message) { ep.Send(to, m) },
			Committed: func(seq types.SeqNum, b *types.Batch, _ []types.Signed) {
				ns.tracker.Committed(ns.engine, seq, b)
				ns.commits.Add(1)
			},
		}, Options{})
		nodes[i] = ns
		eps[i] = ep
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := range nodes {
		wg.Add(1)
		go func(ns *nodeState, in <-chan *types.Message) {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case m := <-in:
					ns.mu.Lock()
					ns.engine.OnMessage(m)
					ns.mu.Unlock()
				}
			}
		}(nodes[i], eps[i].Inbox())
	}
	// Propose 1200 batches as fast as the window allows; give up on a
	// stall so the test reports diagnostics instead of hanging. The
	// budgets are caps, not pacing — a healthy run finishes well under
	// them — but they must absorb the race detector's slowdown (a -race
	// build reaches ~1150/1200 right as the unscaled budget expires).
	scale := time.Duration(1)
	if raceflag.Enabled {
		scale = 4
	}
	stallUntil := time.Now().Add(scale * 8 * time.Second)
	for k := 1; k <= 1200; {
		nodes[0].mu.Lock()
		_, err := nodes[0].engine.Propose(batchOf(uint64(k)))
		nodes[0].mu.Unlock()
		if err != nil {
			if time.Now().After(stallUntil) {
				t.Logf("proposer stalled at %d", k)
				break
			}
			time.Sleep(time.Millisecond)
			continue
		}
		k++
	}
	deadline := time.Now().Add(scale * 10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, ns := range nodes {
			if ns.commits.Load() < 1200 {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	for i, ns := range nodes {
		if got := ns.commits.Load(); got < 1200 {
			ns.mu.Lock()
			t.Errorf("replica %d committed %d/1200 (stable=%d, trackerNext=%d, votes=%v, uncommitted=%d, logsize=%d)",
				i, got, ns.engine.StableSeq(), ns.tracker.Next(), ns.engine.CheckpointVotes(), ns.engine.UncommittedInWindow(), ns.engine.LogSize())
			ns.mu.Unlock()
		}
	}
}
