package pbft

import (
	"testing"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// harness wires n engines together through a synchronous in-memory bus.
// Messages are queued and pumped to quiescence, which keeps tests
// deterministic without goroutines.
type harness struct {
	t       *testing.T
	n       int
	shard   types.ShardID
	engines []*Engine
	queue   []routed
	drop    func(from, to types.NodeID, m *types.Message) bool
	commits map[int][]commitRec // per-replica committed (seq, digest)
	views   map[int][]types.View
}

type routed struct {
	to types.NodeID
	m  *types.Message
}

type commitRec struct {
	seq    types.SeqNum
	digest types.Digest
	batch  *types.Batch
	cert   []types.Signed
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{t: t, n: n, shard: 0, commits: make(map[int][]commitRec), views: make(map[int][]types.View)}
	peers := make([]types.NodeID, n)
	for i := 0; i < n; i++ {
		peers[i] = types.ReplicaNode(0, i)
	}
	kg := crypto.NewKeygen(42)
	for _, p := range peers {
		kg.Register(p)
	}
	for i := 0; i < n; i++ {
		i := i
		ring, err := kg.Ring(peers[i])
		if err != nil {
			t.Fatal(err)
		}
		e := New(0, peers[i], peers, ring, Callbacks{
			Send: func(to types.NodeID, m *types.Message) {
				if h.drop != nil && h.drop(m.From, to, m) {
					return
				}
				h.queue = append(h.queue, routed{to, m})
			},
			Committed: func(seq types.SeqNum, b *types.Batch, cert []types.Signed) {
				h.commits[i] = append(h.commits[i], commitRec{seq, b.Digest(), b, cert})
			},
			ViewChanged: func(v types.View) {
				h.views[i] = append(h.views[i], v)
			},
		}, Options{})
		h.engines = append(h.engines, e)
	}
	return h
}

// pump delivers queued messages until quiescence.
func (h *harness) pump() {
	for len(h.queue) > 0 {
		q := h.queue
		h.queue = nil
		for _, r := range q {
			h.engines[r.to.Index].OnMessage(r.m)
		}
	}
}

func batchOf(seed uint64) *types.Batch {
	return &types.Batch{
		Txns:     []types.Txn{{ID: types.TxnID{Client: 1, Seq: seed}, Writes: []types.Key{types.Key(seed)}, Delta: 1}},
		Involved: []types.ShardID{0},
	}
}

func TestNormalCaseCommit(t *testing.T) {
	h := newHarness(t, 4)
	b := batchOf(1)
	seq, err := h.engines[0].Propose(b)
	if err != nil {
		t.Fatalf("propose: %v", err)
	}
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if len(h.commits[i]) != 1 {
			t.Fatalf("replica %d committed %d batches, want 1", i, len(h.commits[i]))
		}
		c := h.commits[i][0]
		if c.seq != 1 || c.digest != b.Digest() {
			t.Fatalf("replica %d committed wrong entry: %+v", i, c)
		}
		if len(c.cert) < h.engines[i].NF() {
			t.Fatalf("replica %d cert has %d sigs, want >= %d", i, len(c.cert), h.engines[i].NF())
		}
	}
}

func TestNonPrimaryCannotPropose(t *testing.T) {
	h := newHarness(t, 4)
	if _, err := h.engines[1].Propose(batchOf(1)); err == nil {
		t.Fatal("expected error proposing from non-primary")
	}
}

func TestPipelinedProposals(t *testing.T) {
	h := newHarness(t, 4)
	const k = 20
	digests := make([]types.Digest, k)
	for i := 0; i < k; i++ {
		b := batchOf(uint64(i + 1))
		digests[i] = b.Digest()
		if _, err := h.engines[0].Propose(b); err != nil {
			t.Fatalf("propose %d: %v", i, err)
		}
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if len(h.commits[i]) != k {
			t.Fatalf("replica %d committed %d, want %d", i, len(h.commits[i]), k)
		}
		seen := make(map[types.SeqNum]types.Digest)
		for _, c := range h.commits[i] {
			seen[c.seq] = c.digest
		}
		for s := 1; s <= k; s++ {
			if seen[types.SeqNum(s)] != digests[s-1] {
				t.Fatalf("replica %d seq %d digest mismatch", i, s)
			}
		}
	}
}

// TestAgreementUnderPartition checks Proposition 6.1: with one replica cut
// off, the remaining nf still commit, and no two replicas commit different
// digests at the same sequence.
func TestAgreementUnderPartition(t *testing.T) {
	h := newHarness(t, 4)
	dead := types.ReplicaNode(0, 3)
	h.drop = func(from, to types.NodeID, m *types.Message) bool {
		return from == dead || to == dead
	}
	b := batchOf(7)
	if _, err := h.engines[0].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for i := 0; i < 3; i++ {
		if len(h.commits[i]) != 1 {
			t.Fatalf("replica %d committed %d, want 1", i, len(h.commits[i]))
		}
	}
	if len(h.commits[3]) != 0 {
		t.Fatal("partitioned replica should not commit")
	}
}

func TestConflictingPrePrepareRejected(t *testing.T) {
	h := newHarness(t, 4)
	// Primary proposes batch A; a forged pre-prepare with batch B at the
	// same sequence must not displace it.
	a := batchOf(1)
	if _, err := h.engines[0].Propose(a); err != nil {
		t.Fatal(err)
	}
	h.pump()
	forged := &types.Message{
		Type: types.MsgPrePrepare, From: types.ReplicaNode(0, 0), Shard: 0,
		View: 0, Seq: 1, Digest: batchOf(2).Digest(), Batch: batchOf(2),
	}
	h.engines[1].OnMessage(forged) // bad MAC and conflicting: dropped
	h.pump()
	for i := 0; i < 4; i++ {
		if len(h.commits[i]) != 1 || h.commits[i][0].digest != a.Digest() {
			t.Fatalf("replica %d state corrupted by forged pre-prepare", i)
		}
	}
}

func TestVerifyCert(t *testing.T) {
	h := newHarness(t, 4)
	b := batchOf(3)
	if _, err := h.engines[0].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	cert := h.commits[1][0].cert
	auth := h.engines[2] // any ring works for verification
	if err := VerifyCert(authOf(t, auth), 0, b.Digest(), cert, 3); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	// Tampered digest must fail.
	if err := VerifyCert(authOf(t, auth), 0, batchOf(4).Digest(), cert, 3); err == nil {
		t.Fatal("tampered cert accepted")
	}
	// Truncated cert must fail.
	if err := VerifyCert(authOf(t, auth), 0, b.Digest(), cert[:2], 3); err == nil {
		t.Fatal("truncated cert accepted")
	}
	// Duplicate signers must not double-count.
	dup := []types.Signed{cert[0], cert[0], cert[0]}
	if err := VerifyCert(authOf(t, auth), 0, b.Digest(), dup, 3); err == nil {
		t.Fatal("duplicate-signer cert accepted")
	}
}

func authOf(t *testing.T, e *Engine) *crypto.Verifier {
	t.Helper()
	return e.verifier
}

func TestViewChangeElectsNextPrimary(t *testing.T) {
	h := newHarness(t, 4)
	// Primary 0 is silent. Replicas 1..3 time out and start a view change.
	for i := 1; i < 4; i++ {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	for i := 1; i < 4; i++ {
		if got := h.engines[i].View(); got != 1 {
			t.Fatalf("replica %d view = %d, want 1", i, got)
		}
		if h.engines[i].InViewChange() {
			t.Fatalf("replica %d still in view change", i)
		}
	}
	// New primary is replica 1; it can propose and commit.
	if !h.engines[1].IsPrimary() {
		t.Fatal("replica 1 should be primary of view 1")
	}
	b := batchOf(9)
	if _, err := h.engines[1].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for i := 1; i < 4; i++ {
		if len(h.commits[i]) != 1 {
			t.Fatalf("replica %d committed %d after view change, want 1", i, len(h.commits[i]))
		}
	}
}

// TestViewChangePreservesPrepared: a batch that prepared before the view
// change must commit (with the same digest) in the new view — the heart of
// PBFT safety across views.
func TestViewChangePreservesPrepared(t *testing.T) {
	h := newHarness(t, 4)
	b := batchOf(5)

	// Let the batch prepare everywhere but drop all Commit messages, so no
	// replica commits in view 0.
	h.drop = func(from, to types.NodeID, m *types.Message) bool {
		return m.Type == types.MsgCommit
	}
	if _, err := h.engines[0].Propose(b); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if len(h.commits[i]) != 0 {
			t.Fatalf("replica %d committed prematurely", i)
		}
	}

	// Heal the network and change view.
	h.drop = nil
	for i := 0; i < 4; i++ {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		found := false
		for _, c := range h.commits[i] {
			if c.digest == b.Digest() {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %d lost prepared batch across view change", i)
		}
	}
}

func TestJoinRuleFPlus1(t *testing.T) {
	h := newHarness(t, 7) // f = 2
	// Only f+1 = 3 replicas time out; the join rule must pull the rest in.
	for i := 1; i <= 3; i++ {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	inNew := 0
	for i := 0; i < 7; i++ {
		if h.engines[i].View() == 1 {
			inNew++
		}
	}
	if inNew < h.engines[0].NF() {
		t.Fatalf("only %d replicas reached view 1, want >= %d", inNew, h.engines[0].NF())
	}
}

func TestCheckpointGarbageCollects(t *testing.T) {
	h := newHarness(t, 4)
	const k = 10
	for i := 0; i < k; i++ {
		if _, err := h.engines[0].Propose(batchOf(uint64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	h.pump()
	state := types.Digest{1, 2, 3}
	for i := 0; i < 4; i++ {
		h.engines[i].MakeCheckpoint(types.SeqNum(k), state)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if got := h.engines[i].StableSeq(); got != k {
			t.Fatalf("replica %d stableSeq = %d, want %d", i, got, k)
		}
		if h.engines[i].LogSize() != 0 {
			t.Fatalf("replica %d log not garbage-collected: %d entries", i, h.engines[i].LogSize())
		}
	}
}

func TestTickEscalatesStalledViewChange(t *testing.T) {
	h := newHarness(t, 4)
	// Replica 2 starts a view change for view 1, but nobody else joins and
	// no NewView arrives. After the view timeout it must target view 2.
	e := h.engines[2]
	e.StartViewChange(1)
	e.Tick(time.Now().Add(time.Second))
	if e.vcTarget != 2 {
		t.Fatalf("vcTarget = %d, want 2", e.vcTarget)
	}
}

func TestWindowBoundsProposals(t *testing.T) {
	h := newHarness(t, 4)
	e := h.engines[0]
	e.window = 4
	for i := 0; i < 4; i++ {
		if _, err := e.Propose(batchOf(uint64(i))); err != nil {
			t.Fatalf("propose %d within window: %v", i, err)
		}
	}
	if _, err := e.Propose(batchOf(99)); err == nil {
		t.Fatal("proposal beyond window accepted")
	}
}

// TestViewChangeAfterCheckpoint is a regression test: the ViewChange
// signature must remain verifiable inside the NewView justification after
// the stable checkpoint has advanced past zero (the signed tuple covers the
// stable sequence).
func TestViewChangeAfterCheckpoint(t *testing.T) {
	h := newHarness(t, 4)
	const k = 10
	for i := 1; i <= k; i++ {
		if _, err := h.engines[0].Propose(batchOf(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	h.pump()
	state := types.Digest{9}
	for i := 0; i < 4; i++ {
		h.engines[i].MakeCheckpoint(k, state)
	}
	h.pump()
	if h.engines[2].StableSeq() != k {
		t.Fatalf("checkpoint did not stabilize")
	}
	// Now view-change: every replica must install view 1, not just the new
	// primary.
	for i := 1; i < 4; i++ {
		h.engines[i].StartViewChange(1)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		if got := h.engines[i].View(); got != 1 {
			t.Fatalf("replica %d stuck in view %d after checkpointed view change", i, got)
		}
		if h.engines[i].InViewChange() {
			t.Fatalf("replica %d still in view change", i)
		}
	}
	// And the new view must make progress.
	if _, err := h.engines[1].Propose(batchOf(99)); err != nil {
		t.Fatal(err)
	}
	h.pump()
	for i := 0; i < 4; i++ {
		found := false
		for _, c := range h.commits[i] {
			if c.digest == batchOf(99).Digest() {
				found = true
			}
		}
		if !found {
			t.Fatalf("replica %d did not commit in the new view", i)
		}
	}
}
