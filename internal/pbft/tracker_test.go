package pbft

import (
	"testing"

	"ringbft/internal/types"
)

func TestTrackerKeepsWindowSliding(t *testing.T) {
	h := newHarness(t, 4)
	trackers := make([]*CheckpointTracker, 4)
	for i := range trackers {
		trackers[i] = NewCheckpointTracker(64)
	}
	// Attach tracker to commit callback via wrapper: re-register Committed.
	for i := range h.engines {
		i := i
		orig := h.engines[i].cb.Committed
		h.engines[i].cb.Committed = func(seq types.SeqNum, b *types.Batch, cert []types.Signed) {
			trackers[i].Committed(h.engines[i], seq, b)
			if orig != nil {
				orig(seq, b, cert)
			}
		}
	}
	for k := 1; k <= 1200; k++ {
		if _, err := h.engines[0].Propose(batchOf(uint64(k))); err != nil {
			t.Fatalf("propose %d failed: %v (stable=%d)", k, err, h.engines[0].StableSeq())
		}
		h.pump()
	}
	for i := range h.engines {
		if got := h.engines[i].StableSeq(); got < 1024 {
			t.Fatalf("replica %d stableSeq=%d, want >= 1024", i, got)
		}
	}
}
