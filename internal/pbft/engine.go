// Package pbft implements the intra-shard Practical Byzantine Fault
// Tolerance engine (Castro & Liskov) that RingBFT runs inside every shard
// (Section 4.1), including batching, checkpoints, and view change. The
// engine is a pure state machine: the hosting replica's event loop feeds it
// messages and timer ticks, and it emits messages through a send callback
// and consensus results through a committed callback. This is what makes
// RingBFT a *meta* protocol (goal G2): the ring layer only consumes the
// engine's commit certificates and never looks inside the phases.
//
// Message authentication follows the paper's split (Section 3): PrePrepare
// and Prepare carry pairwise MACs; Commit, Checkpoint, ViewChange, and
// NewView carry Ed25519 signatures, because nf signed Commit messages form
// the transferable commit certificate A that Forward messages present to the
// next shard (Fig 5 line 16).
package pbft

import (
	"fmt"
	"time"

	"ringbft/internal/crypto"
	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// Callbacks connect the engine to its hosting replica.
type Callbacks struct {
	// Send transmits a message to one peer. Must never block.
	Send func(to types.NodeID, m *types.Message)
	// Committed fires exactly once per sequence number when the batch at
	// that sequence gathers nf Commit messages. Calls may arrive out of
	// sequence order: RingBFT's lock manager (π, k_max) restores order
	// where it matters (Fig 5 lines 17-28). cert holds the nf signed
	// Commit tuples proving the decision.
	Committed func(seq types.SeqNum, batch *types.Batch, cert []types.Signed)
	// ViewChanged fires when the replica installs a new view.
	ViewChanged func(v types.View)
	// Stabilized fires when a checkpoint becomes stable through nf matching
	// signed Checkpoint messages, with the quorum's agreed state digest.
	// The durability layer snapshots on it; the host also uses it to detect
	// that it has fallen behind (the checkpoint is proof the shard
	// progressed to seq whether or not this replica kept up). It does not
	// fire for watermark advances learned indirectly through view-change
	// messages, which carry no checkpoint quorum.
	Stabilized func(seq types.SeqNum, digest types.Digest)
	// Justify, when non-nil, gates PrePrepare acceptance on host-level
	// evidence for the batch. An unjustified proposal is parked — not
	// prepared — until ReplayParked is called after the evidence arrives.
	// RingBFT uses it to refuse cross-shard proposals at non-initiator
	// shards that no accepted Forward vouches for: a Byzantine primary can
	// otherwise commit a fabricated batch variant with its own implicit
	// vote plus f honest backups, poisoning the shard's lock table with a
	// transaction no other shard will ever execute (found by
	// internal/chaos, byz-equivocate schedules).
	Justify func(batch *types.Batch) bool
	// Justification, when non-nil, returns the transferable certificate
	// that entitles batch to be proposed at this shard (for RingBFT, the
	// previous shard's nf-signed commit certificate carried by Forward; for
	// AHL, the committee's AHLPrepare certificate). The engine attaches it
	// to PreparedProofs in ViewChange P sets and NewView re-proposals so a
	// receiver that has not locally accepted the certificate can still
	// verify the re-proposal instead of parking it forever. Nil or empty
	// for batches that need no justification.
	Justification func(batch *types.Batch) []types.Signed
	// VerifyJustification, when non-nil, checks a carried justification for
	// a batch the local Justify gate rejects. A NewView whose re-proposal
	// fails both gates is rejected wholesale — without this check a
	// Byzantine new primary injects an unjustified batch through the
	// re-proposal path that Justify blocks on the normal path.
	VerifyJustification func(batch *types.Batch, justification []types.Signed) bool
	// Equivocation, when non-nil, fires when this replica holds verifiable
	// proof that the primary proposed two different digests at one
	// (view, seq): either a directly conflicting PrePrepare pair, or the
	// accepted PrePrepare plus the first of f+1 Prepares from distinct
	// senders for a different digest (at least one of f+1 distinct senders
	// is honest and echoes what the primary sent it, so accusing the
	// primary is sound). Both messages are MAC-authenticated to this
	// replica; the host records them as evidence.
	Equivocation func(first, second *types.Message)
	// UnjustifiedNewView, when non-nil, fires when a NewView is rejected
	// because re-proposal p carries no valid justification; m is the
	// offending signed NewView.
	UnjustifiedNewView func(m *types.Message, p types.PreparedProof)
}

// commitVote is one replica's signed Commit for an entry, tagged with the
// digest it voted for.
type commitVote struct {
	digest types.Digest
	sig    []byte
}

// entry is one slot of the consensus log. Prepare and Commit votes are
// tagged with the digest they were cast for: votes can arrive before the
// PrePrepare fixes the entry's digest, and counting digest-blind buffered
// votes toward whatever digest lands later lets an equivocating primary
// manufacture conflicting prepared states from honest votes (found by
// internal/chaos, byz-equivocate schedules).
type entry struct {
	view        types.View
	digest      types.Digest
	batch       *types.Batch
	preprepared bool
	prepares    map[types.NodeID]types.Digest
	commits     map[types.NodeID]commitVote
	prepared    bool
	committed   bool
	firstSeen   time.Time
	// helped tracks the view in which a straggler catch-up Commit was last
	// re-sent per peer (see replyCommit).
	helped map[types.NodeID]types.View
	// ppMsg retains the accepted PrePrepare so it can be paired with a
	// conflicting message as equivocation evidence; conflicts collects the
	// first Prepare per sender whose digest contradicts it, and accused
	// latches once the f+1 threshold fired the Equivocation callback.
	ppMsg     *types.Message
	conflicts map[types.NodeID]*types.Message
	accused   bool
}

// Engine is one replica's PBFT state machine for one shard. Not safe for
// concurrent use: exactly one goroutine (the replica event loop) may call
// its methods.
type Engine struct {
	shard    types.ShardID
	self     types.NodeID
	peers    []types.NodeID // all replicas of the shard, index i = replica i
	n, f     int
	nf       int
	auth     crypto.Authenticator
	verifier *crypto.Verifier
	cb       Callbacks
	now      func() time.Time
	onPhase  func(seq types.SeqNum, phase trace.Phase, at time.Time)

	view    types.View
	nextSeq types.SeqNum
	log     map[types.SeqNum]*entry

	stableSeq   types.SeqNum
	window      types.SeqNum
	checkpoints map[types.SeqNum]map[types.NodeID]cpVote

	// future stashes normal-case messages that arrived for a view we have
	// not installed yet (e.g. a PrePrepare racing ahead of its NewView);
	// they are replayed after the view installs. Bounded to keep Byzantine
	// senders from ballooning memory.
	future []*types.Message
	// parked stashes PrePrepares the Justify callback rejected (typically a
	// legitimate proposal racing ahead of this replica's Forward quorum);
	// the host replays them via ReplayParked once justification lands.
	// Bounded like future.
	parked []*types.Message

	// View-change state.
	inViewChange bool
	vcTarget     types.View
	vcStarted    time.Time
	vcTimeout    time.Duration
	vcMsgs       map[types.View]map[types.NodeID]*types.Message
	vcVotes      map[types.View]map[types.NodeID]struct{} // for f+1 join rule
}

// Options tunes an Engine.
type Options struct {
	Window      types.SeqNum  // log watermark window (default 512)
	ViewTimeout time.Duration // new-view escalation timeout (default 250ms)
	Clock       func() time.Time
	// Verifier is the host's batched signature verifier; sharing the host's
	// instance shares its worker pool and verified-certificate cache. Nil
	// constructs a private serial verifier.
	Verifier *crypto.Verifier
	// OnPhase, when set, observes lifecycle transitions: PrePrepare
	// acceptance, the prepared and committed predicates, and view-change
	// entry. Timestamps come from the engine clock, so deterministic hosts
	// see virtual time. The callback must not re-enter the engine.
	OnPhase func(seq types.SeqNum, phase trace.Phase, at time.Time)
}

// New creates an engine for replica self of a shard whose members are peers
// (peers[i] must be replica index i; self must appear in peers).
func New(shard types.ShardID, self types.NodeID, peers []types.NodeID, auth crypto.Authenticator, cb Callbacks, opts Options) *Engine {
	if opts.Window == 0 {
		opts.Window = 512
	}
	if opts.ViewTimeout == 0 {
		opts.ViewTimeout = 250 * time.Millisecond
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Verifier == nil {
		opts.Verifier = crypto.NewVerifier(auth, 0)
	} else if opts.Verifier.Authenticator != auth {
		// Certificate checks and per-message checks must share key material;
		// a verifier wrapping different keys would split-brain the engine.
		panic("pbft: Options.Verifier wraps a different Authenticator than auth")
	}
	n := len(peers)
	f := (n - 1) / 3
	return &Engine{
		shard: shard,
		self:  self,
		peers: peers,
		n:     n,
		f:     f,
		nf:    n - f,
		// auth comes from the verifier so certificate checks and per-message
		// checks can never disagree on key material.
		auth:        opts.Verifier.Authenticator,
		verifier:    opts.Verifier,
		cb:          cb,
		now:         opts.Clock,
		onPhase:     opts.OnPhase,
		nextSeq:     1,
		log:         make(map[types.SeqNum]*entry),
		window:      opts.Window,
		vcTimeout:   opts.ViewTimeout,
		checkpoints: make(map[types.SeqNum]map[types.NodeID]cpVote),
		vcMsgs:      make(map[types.View]map[types.NodeID]*types.Message),
		vcVotes:     make(map[types.View]map[types.NodeID]struct{}),
	}
}

// observe reports a lifecycle transition to the host's tracer, stamped
// with the engine clock.
func (e *Engine) observe(seq types.SeqNum, phase trace.Phase) {
	if e.onPhase != nil {
		e.onPhase(seq, phase, e.now())
	}
}

// View returns the current view.
func (e *Engine) View() types.View { return e.view }

// Primary returns the primary of view v: replica v mod n.
func (e *Engine) Primary(v types.View) types.NodeID { return e.peers[int(uint64(v)%uint64(e.n))] }

// IsPrimary reports whether this replica is the primary of the current view.
func (e *Engine) IsPrimary() bool { return e.Primary(e.view) == e.self }

// InViewChange reports whether a view change is in progress.
func (e *Engine) InViewChange() bool { return e.inViewChange }

// StableSeq returns the last stable checkpoint sequence.
func (e *Engine) StableSeq() types.SeqNum { return e.stableSeq }

// NF returns the quorum size n-f.
func (e *Engine) NF() int { return e.nf }

// F returns the per-shard fault bound.
func (e *Engine) F() int { return e.f }

// Quorum reports whether the engine has committed seq.
func (e *Engine) Quorum(seq types.SeqNum) bool {
	ent, ok := e.log[seq]
	return ok && ent.committed
}

// OldestUncommitted returns the first-seen time of the oldest log entry that
// has been pre-prepared but not committed, and whether one exists. Hosts use
// it to drive the local timer (view-change trigger, attack A2).
func (e *Engine) OldestUncommitted() (time.Time, bool) {
	var oldest time.Time
	found := false
	for _, ent := range e.log {
		if ent.preprepared && !ent.committed {
			if !found || ent.firstSeen.Before(oldest) {
				oldest = ent.firstSeen
				found = true
			}
		}
	}
	return oldest, found
}

func (e *Engine) getEntry(seq types.SeqNum) *entry {
	ent, ok := e.log[seq]
	if !ok {
		ent = &entry{
			prepares:  make(map[types.NodeID]types.Digest),
			commits:   make(map[types.NodeID]commitVote),
			firstSeen: e.now(),
		}
		e.log[seq] = ent
	}
	return ent
}

// Propose assigns the next sequence number to batch and broadcasts
// PrePrepare. Only the current primary may call it; other callers receive an
// error and must route the request to the primary instead (Fig 5 line 9).
func (e *Engine) Propose(batch *types.Batch) (types.SeqNum, error) {
	if e.inViewChange {
		return 0, fmt.Errorf("pbft: view change in progress")
	}
	if !e.IsPrimary() {
		return 0, fmt.Errorf("pbft: replica %v is not the primary of view %d", e.self, e.view)
	}
	if e.nextSeq > e.stableSeq+e.window {
		return 0, fmt.Errorf("pbft: log window full (next %d, stable %d)", e.nextSeq, e.stableSeq)
	}
	seq := e.nextSeq
	e.nextSeq++
	d := batch.Digest()

	ent := e.getEntry(seq)
	ent.view = e.view
	ent.digest = d
	ent.batch = batch
	ent.preprepared = true
	// The primary's PrePrepare doubles as its Prepare vote.
	ent.prepares[e.self] = d

	m := &types.Message{
		Type: types.MsgPrePrepare, From: e.self, Shard: e.shard,
		View: e.view, Seq: seq, Digest: d, Batch: batch,
	}
	e.broadcastMAC(m)
	e.observe(seq, trace.PhasePrePrepare)
	return seq, nil
}

// broadcastMAC sends a per-recipient MAC'd copy of m to every peer except
// self (the MAC authenticator vector of PBFT). The canonical bytes are the
// same for every recipient — only the pairwise key differs — so they are
// built once for the whole broadcast.
func (e *Engine) broadcastMAC(m *types.Message) {
	var buf [types.SigBytesLen]byte
	sb := m.AppendSigBytes(buf[:0])
	for _, p := range e.peers {
		if p == e.self {
			continue
		}
		cp := *m
		cp.MAC = e.auth.MAC(p, sb)
		e.cb.Send(p, &cp)
	}
}

// broadcastSigned signs m once and sends a copy to every peer except self.
func (e *Engine) broadcastSigned(m *types.Message) {
	m.Sig = e.auth.Sign(m.SigBytes())
	for _, p := range e.peers {
		if p == e.self {
			continue
		}
		cp := *m
		e.cb.Send(p, &cp)
	}
}

func (e *Engine) isPeer(id types.NodeID) bool {
	if id.Kind != e.peers[0].Kind || id.Shard != e.shard {
		return false
	}
	return id.Index >= 0 && id.Index < e.n && e.peers[id.Index] == id
}

// OnMessage feeds one inbound intra-shard message to the state machine.
// Malformed, unauthenticated, or out-of-window messages are dropped — a
// well-formedness check is the first defence against Byzantine senders
// (Section 3, "well-formed").
func (e *Engine) OnMessage(m *types.Message) {
	if m == nil || !e.isPeer(m.From) || m.From == e.self {
		return
	}
	switch m.Type {
	case types.MsgPrePrepare, types.MsgPrepare, types.MsgCommit:
		// A message for a future view — or for the view currently being
		// installed — is stashed and replayed once the view change lands,
		// instead of being dropped (message order across a view change is
		// not guaranteed by the network).
		if m.View > e.view || (e.inViewChange && m.View == e.view) {
			if len(e.future) < 8192 {
				e.future = append(e.future, m)
			}
			return
		}
	default:
		// Only the three-phase messages are view-scoped; checkpoint and
		// view-change traffic carries its own watermarks and is never
		// stashed for a future view.
	}
	switch m.Type {
	case types.MsgPrePrepare:
		e.onPrePrepare(m)
	case types.MsgPrepare:
		e.onPrepare(m)
	case types.MsgCommit:
		e.onCommit(m)
	case types.MsgCheckpoint:
		e.onCheckpoint(m)
	case types.MsgViewChange:
		e.onViewChange(m)
	case types.MsgNewView:
		e.onNewView(m)
	default:
		// Cross-shard and client message types are routed above this layer
		// (Replica.HandleMessage); anything else inbound here is dropped as
		// malformed rather than guessed at.
	}
}

func (e *Engine) inWindow(seq types.SeqNum) bool {
	return seq > e.stableSeq && seq <= e.stableSeq+e.window
}

func (e *Engine) onPrePrepare(m *types.Message) {
	if e.inViewChange || m.View != e.view || m.From != e.Primary(e.view) {
		return
	}
	if !e.inWindow(m.Seq) || m.Batch == nil {
		return
	}
	var sb [types.SigBytesLen]byte
	if err := e.auth.VerifyMAC(m.From, m.AppendSigBytes(sb[:0]), m.MAC); err != nil {
		return
	}
	if m.Batch.Digest() != m.Digest {
		return
	}
	if e.cb.Justify != nil && !e.cb.Justify(m.Batch) {
		if len(e.parked) < 8192 {
			e.parked = append(e.parked, m)
		}
		return
	}
	ent := e.getEntry(m.Seq)
	// "r did not accept a k-th proposal from pS" (Fig 5 line 10): refuse a
	// conflicting proposal at the same (view, seq). Two MAC-valid
	// PrePrepares from one primary at one (view, seq) with different
	// digests are direct equivocation evidence.
	if ent.preprepared && (ent.view != m.View || ent.digest != m.Digest) {
		if ent.view == m.View && ent.ppMsg != nil && !ent.accused && e.cb.Equivocation != nil {
			ent.accused = true
			e.cb.Equivocation(ent.ppMsg, m)
		}
		return
	}
	if ent.preprepared {
		return // duplicate
	}
	ent.view = m.View
	ent.digest = m.Digest
	ent.batch = m.Batch
	ent.preprepared = true
	ent.ppMsg = m
	// Count the primary's PrePrepare as its Prepare, then vote ourselves.
	ent.prepares[m.From] = m.Digest
	ent.prepares[e.self] = m.Digest

	prep := &types.Message{
		Type: types.MsgPrepare, From: e.self, Shard: e.shard,
		View: m.View, Seq: m.Seq, Digest: m.Digest,
	}
	e.broadcastMAC(prep)
	e.observe(m.Seq, trace.PhasePrePrepare)
	e.maybePrepared(m.Seq, ent)
}

func (e *Engine) onPrepare(m *types.Message) {
	if e.inViewChange || m.View != e.view || !e.inWindow(m.Seq) {
		return
	}
	var sb [types.SigBytesLen]byte
	if err := e.auth.VerifyMAC(m.From, m.AppendSigBytes(sb[:0]), m.MAC); err != nil {
		return
	}
	ent := e.getEntry(m.Seq)
	if ent.preprepared && ent.digest != m.Digest {
		e.noteConflictingPrepare(ent, m)
		return
	}
	if ent.committed {
		// The sender is still running phases for a sequence this replica
		// already committed (it missed the old view's traffic; after the
		// view change, committed replicas skip the re-proposal phases).
		// Hand it this replica's Commit directly — without these replies,
		// fewer than nf stragglers can never assemble a commit quorum.
		e.replyCommit(m.From, m.Seq, ent)
		return
	}
	ent.prepares[m.From] = m.Digest
	e.maybePrepared(m.Seq, ent)
}

// noteConflictingPrepare records a MAC-valid Prepare whose digest
// contradicts the accepted PrePrepare at the same (view, seq). No single
// conflicting vote incriminates the primary — the sender itself could be
// Byzantine — but f+1 distinct conflicting senders include at least one
// honest replica echoing what the primary actually sent it, so at that
// threshold the primary provably equivocated and the Equivocation callback
// fires with the PrePrepare plus the canonically-first conflicting Prepare.
func (e *Engine) noteConflictingPrepare(ent *entry, m *types.Message) {
	if e.cb.Equivocation == nil || ent.accused || ent.ppMsg == nil || m.View != ent.view {
		return
	}
	if ent.conflicts == nil {
		ent.conflicts = make(map[types.NodeID]*types.Message)
	}
	if _, dup := ent.conflicts[m.From]; !dup {
		ent.conflicts[m.From] = m
	}
	if len(ent.conflicts) <= e.f {
		return
	}
	ent.accused = true
	first := ent.conflicts[types.SortedNodeKeys(ent.conflicts)[0]]
	e.cb.Equivocation(ent.ppMsg, first)
}

// maybePrepared transitions to prepared once the entry has a PrePrepare and
// nf distinct Prepare votes for its digest, then broadcasts a signed Commit
// (Fig 5 lines 12-13).
func (e *Engine) maybePrepared(seq types.SeqNum, ent *entry) {
	if ent.prepared || !ent.preprepared {
		return
	}
	votes := 0
	for _, d := range ent.prepares {
		if d == ent.digest {
			votes++
		}
	}
	if votes < e.nf {
		return
	}
	ent.prepared = true
	e.observe(seq, trace.PhasePrepare)
	c := &types.Message{
		Type: types.MsgCommit, From: e.self, Shard: e.shard,
		View: ent.view, Seq: seq, Digest: ent.digest,
	}
	sig := e.auth.Sign(c.SigBytes())
	ent.commits[e.self] = commitVote{digest: ent.digest, sig: sig}
	c.Sig = sig
	for _, p := range e.peers {
		if p == e.self {
			continue
		}
		cp := *c
		e.cb.Send(p, &cp)
	}
	e.maybeCommitted(seq, ent)
}

func (e *Engine) onCommit(m *types.Message) {
	if !e.inWindow(m.Seq) {
		return
	}
	// Commits are accepted even during view change for newer views? No:
	// PBFT discards them; retransmission and checkpoints recover.
	if e.inViewChange || m.View != e.view {
		return
	}
	var sb [types.SigBytesLen]byte
	if err := e.auth.Verify(m.From, m.AppendSigBytes(sb[:0]), m.Sig); err != nil {
		return
	}
	ent := e.getEntry(m.Seq)
	if ent.preprepared && ent.digest != m.Digest {
		return
	}
	if ent.committed {
		if ent.digest == m.Digest {
			e.replyCommit(m.From, m.Seq, ent) // straggler catch-up (see onPrepare)
		}
		return
	}
	if _, dup := ent.commits[m.From]; dup {
		return
	}
	ent.commits[m.From] = commitVote{digest: m.Digest, sig: m.Sig}
	e.maybeCommitted(m.Seq, ent)
}

// replyCommit re-sends this replica's Commit for an already-committed
// sequence, signed for the current view, directly to a peer still working
// on that sequence. After a view change, committed replicas skip the
// re-proposal phases; these targeted replies are what lets replicas that
// missed the original commit round catch up (found by internal/chaos,
// loss-storm schedules: two stragglers also starve the checkpoint quorum,
// so state transfer cannot rescue them either).
//
// At most one reply per (peer, view): a leftover Commit arriving at a
// committed replica would otherwise bounce replies between two committed
// replicas forever.
func (e *Engine) replyCommit(to types.NodeID, seq types.SeqNum, ent *entry) {
	if ent.helped == nil {
		ent.helped = make(map[types.NodeID]types.View)
	}
	if v, ok := ent.helped[to]; ok && v >= e.view {
		return
	}
	ent.helped[to] = e.view
	c := &types.Message{
		Type: types.MsgCommit, From: e.self, Shard: e.shard,
		View: e.view, Seq: seq, Digest: ent.digest,
	}
	c.Sig = e.auth.Sign(c.SigBytes())
	e.cb.Send(to, c)
}

// maybeCommitted fires the Committed callback once nf signed Commits match a
// prepared entry, handing the host the commit certificate A (Fig 5 line 16).
func (e *Engine) maybeCommitted(seq types.SeqNum, ent *entry) {
	if ent.committed || !ent.preprepared {
		return
	}
	votes := 0
	for _, cv := range ent.commits {
		if cv.digest == ent.digest {
			votes++
		}
	}
	if votes < e.nf {
		return
	}
	if !ent.prepared {
		// nf signed Commits are themselves proof the shard prepared this
		// digest — the same proof a Forward certificate carries to other
		// shards. A replica that missed the Prepare round (single straggler
		// after a view change: only its own and the implicit primary vote
		// remain) adopts it instead of stalling.
		ent.prepared = true
	}
	ent.committed = true
	e.observe(seq, trace.PhaseCommit)
	// Canonical voter order: the certificate travels in messages, so its
	// layout must not depend on map iteration order (replay divergence).
	cert := make([]types.Signed, 0, e.nf)
	for _, from := range types.SortedNodeKeys(ent.commits) {
		cv := ent.commits[from]
		if cv.digest != ent.digest {
			continue
		}
		cert = append(cert, types.Signed{
			From: from, Type: types.MsgCommit, Shard: e.shard,
			View: ent.view, Seq: seq, Digest: ent.digest, Sig: cv.sig,
		})
		if len(cert) == e.nf {
			break
		}
	}
	if e.cb.Committed != nil {
		e.cb.Committed(seq, ent.batch, cert)
	}
}

// VerifyCert checks a commit certificate allegedly produced by the replicas
// of shard (as carried inside a Forward message): at least quorum distinct
// valid signatures over identical (shard, view, seq, digest) Commit tuples.
// Any replica of any shard can run this check given the public keys — this
// is why cross-shard messages use DS, not MACs (non-repudiation, Section 3).
//
// The fast path: a certificate whose full content already verified on this
// node is accepted from the verifier's bounded cache without re-checking nf
// Ed25519 signatures, and on a cache miss the signatures are checked on the
// verifier's worker pool (serially when VerifyWorkers <= 1). Accept/reject
// decisions match the serial path byte for byte: the cache key covers every
// entry's tuple and signature plus the expected digest and quorum, and only
// full successes are ever cached.
func VerifyCert(v *crypto.Verifier, shard types.ShardID, digest types.Digest, cert []types.Signed, quorum int) error {
	if len(cert) < quorum {
		return fmt.Errorf("pbft: certificate has %d signatures, need %d", len(cert), quorum)
	}
	useCache := v.CertCacheEnabled()
	var key crypto.CertKey
	if useCache {
		key = crypto.CertCacheKey(shard, digest, quorum, cert)
		if v.CertVerified(key) {
			return nil
		}
	}

	// Structural pass (no crypto): keep entries with the right type, shard,
	// and digest, group them by (view, seq) — an honest certificate forms a
	// single group — and drop duplicate senders and non-members of shard.
	type group struct {
		view    types.View
		seq     types.SeqNum
		entries []*types.Signed
		seen    map[types.NodeID]struct{}
	}
	var groups []*group
	for i := range cert {
		s := &cert[i]
		if s.Type != types.MsgCommit || s.Shard != shard || s.Digest != digest {
			continue
		}
		if s.From.Shard != shard {
			continue
		}
		var g *group
		for _, c := range groups {
			if c.view == s.View && c.seq == s.Seq {
				g = c
				break
			}
		}
		if g == nil {
			g = &group{view: s.View, seq: s.Seq, seen: make(map[types.NodeID]struct{}, quorum)}
			groups = append(groups, g)
		}
		if _, dup := g.seen[s.From]; dup {
			continue
		}
		g.seen[s.From] = struct{}{}
		g.entries = append(g.entries, s)
	}

	bestValid, bestStructural, checked := 0, 0, false
	for _, g := range groups {
		if len(g.entries) > bestStructural {
			bestStructural = len(g.entries)
		}
		if len(g.entries) < quorum {
			continue
		}
		checked = true
		valid := v.VerifyQuorum(g.entries, quorum)
		if valid >= quorum {
			if useCache {
				v.MarkCertVerified(key)
			}
			return nil
		}
		if valid > bestValid {
			bestValid = valid
		}
	}
	if !checked {
		return fmt.Errorf("pbft: certificate has only %d structurally matching entries (unverified), need %d", bestStructural, quorum)
	}
	return fmt.Errorf("pbft: certificate has %d valid signatures, need %d", bestValid, quorum)
}

// ReplayParked re-feeds PrePrepares that Justify previously rejected. The
// host calls it whenever new justification evidence arrives (e.g. a Forward
// quorum completing); still-unjustified proposals park again.
func (e *Engine) ReplayParked() {
	if len(e.parked) == 0 {
		return
	}
	replay := e.parked
	e.parked = nil
	for _, m := range replay {
		e.OnMessage(m)
	}
}

// ResumeAt positions a recovered engine: stable is the last stable
// checkpoint the replica's durable state covers and next the sequence it
// will participate from. Call once, after recovery and before any traffic —
// like ForceView, using it on a log with in-flight proposals would violate
// safety. The window anchors at stable, so the recovered replica accepts
// exactly the proposals its restored state can extend.
func (e *Engine) ResumeAt(stable, next types.SeqNum) {
	// Monotonic on purpose: besides crash recovery (fresh engine, both
	// watermarks at zero), hosts call this after an in-flight peer state
	// transfer, where the engine is live — regressing stableSeq would
	// re-open a GC'd window and regressing nextSeq would make a future
	// primary re-propose sequences the shard already committed.
	if stable > e.stableSeq {
		e.stableSeq = stable
	}
	if next <= stable {
		next = stable + 1
	}
	if next > e.nextSeq {
		e.nextSeq = next
	}
	stable = e.stableSeq
	for s := range e.log {
		if s <= stable {
			delete(e.log, s)
		}
	}
	for s := range e.checkpoints {
		if s < stable {
			delete(e.checkpoints, s)
		}
	}
	// A transfer-repositioned replica rejoins active duty in its current
	// view. If it was alone in a view change nobody else joined (a lone
	// spurious timeout keeps inViewChange forever — the shard is healthy,
	// so no NewView will arrive), staying dark would waste the fresh state
	// it just installed (found by internal/chaos, loss-storm schedules).
	e.inViewChange = false
	e.vcTarget = 0
}

// ForceView installs view v directly, without running the view-change
// protocol. It exists for multi-instance protocols (RCC) that statically
// assign each instance a distinct primary before any traffic flows; calling
// it on a log with in-flight proposals would violate safety.
func (e *Engine) ForceView(v types.View) { e.view = v }
