package pbft

import (
	"fmt"
	"testing"

	"ringbft/internal/crypto"
	"ringbft/internal/types"
)

// certFixture builds a cluster of n registered replicas of shard 0 and a
// valid commit certificate of n signatures over digest d at (view 1, seq 7).
func certFixture(t testing.TB, n int) (*crypto.Keygen, []types.Signed, types.Digest) {
	t.Helper()
	kg := crypto.NewKeygen(31)
	ids := make([]types.NodeID, n)
	for i := range ids {
		ids[i] = types.ReplicaNode(0, i)
		kg.Register(ids[i])
	}
	d := types.Digest{4, 2}
	cert := make([]types.Signed, n)
	for i, id := range ids {
		ring, err := kg.Ring(id)
		if err != nil {
			t.Fatal(err)
		}
		s := types.Signed{From: id, Type: types.MsgCommit, Shard: 0, View: 1, Seq: 7, Digest: d}
		s.Sig = ring.Sign(s.SigBytes())
		cert[i] = s
	}
	return kg, cert, d
}

func fixtureVerifier(t testing.TB, kg *crypto.Keygen, workers int) *crypto.Verifier {
	t.Helper()
	ring, err := kg.Ring(types.ReplicaNode(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	return crypto.NewVerifier(ring, workers)
}

// TestVerifyCertTamperTable runs the same adversarial table against the
// serial and the batched/pooled verifier: every tampered certificate must be
// rejected by both, and the valid one accepted by both.
func TestVerifyCertTamperTable(t *testing.T) {
	kg, cert, d := certFixture(t, 4)
	copyCert := func() []types.Signed {
		c := make([]types.Signed, len(cert))
		copy(c, cert)
		return c
	}
	cases := []struct {
		name string
		cert func() []types.Signed
		dig  types.Digest
		ok   bool
	}{
		{"valid", copyCert, d, true},
		{"valid with one junk entry", func() []types.Signed {
			c := copyCert()
			c[3].Sig = append([]byte(nil), c[3].Sig...)
			c[3].Sig[0] ^= 1
			return c
		}, d, true}, // 3 valid of 4 still meets quorum 3
		{"wrong digest expected", copyCert, types.Digest{0xFF}, false},
		{"flipped sig byte", func() []types.Signed {
			c := copyCert()
			for i := range c {
				c[i].Sig = append([]byte(nil), c[i].Sig...)
				c[i].Sig[20] ^= 1
			}
			return c
		}, d, false},
		{"entry digest swapped", func() []types.Signed {
			c := copyCert()
			c[0].Digest = types.Digest{1}
			c[1].Digest = types.Digest{1}
			return c
		}, d, false},
		{"duplicate signers", func() []types.Signed {
			return []types.Signed{cert[0], cert[0], cert[0], cert[0]}
		}, d, false},
		{"truncated below quorum", func() []types.Signed { return cert[:2] }, d, false},
		{"foreign shard member", func() []types.Signed {
			c := copyCert()
			for i := range c {
				c[i].From.Shard = 1
			}
			return c
		}, d, false},
		{"wrong type", func() []types.Signed {
			c := copyCert()
			for i := range c {
				c[i].Type = types.MsgPrepare
			}
			return c
		}, d, false},
		{"split views", func() []types.Signed {
			c := copyCert()
			c[0].View = 2
			c[1].View = 3
			return c
		}, d, false}, // only 2 entries left in the (1,7) group
	}
	for _, workers := range []int{0, 4} {
		v := fixtureVerifier(t, kg, workers)
		v.SetCertCacheSize(0) // isolate verification from caching
		for _, tc := range cases {
			err := VerifyCert(v, 0, tc.dig, tc.cert(), 3)
			if tc.ok && err != nil {
				t.Errorf("workers=%d %s: valid cert rejected: %v", workers, tc.name, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("workers=%d %s: tampered cert accepted", workers, tc.name)
			}
		}
	}
}

// TestVerifyCertCachePoisoning: a certificate for the same (shard, view,
// seq) whose content differs from a cached success must be re-verified and
// rejected — and failures must never populate the cache.
func TestVerifyCertCachePoisoning(t *testing.T) {
	kg, cert, d := certFixture(t, 4)
	v := fixtureVerifier(t, kg, 0)

	if err := VerifyCert(v, 0, d, cert, 3); err != nil {
		t.Fatalf("valid cert rejected: %v", err)
	}
	if hits := v.CertCacheHits(); hits != 0 {
		t.Fatalf("first verification counted %d cache hits", hits)
	}
	if err := VerifyCert(v, 0, d, cert, 3); err != nil {
		t.Fatalf("re-delivered cert rejected: %v", err)
	}
	if hits := v.CertCacheHits(); hits != 1 {
		t.Fatalf("re-delivery did not hit the cache (hits=%d)", hits)
	}

	// Same slot, tampered content: must miss the cache and be rejected.
	poisoned := make([]types.Signed, len(cert))
	copy(poisoned, cert)
	for i := range poisoned {
		poisoned[i].Sig = append([]byte(nil), cert[i].Sig...)
		poisoned[i].Sig[5] ^= 1
	}
	if err := VerifyCert(v, 0, d, poisoned, 3); err == nil {
		t.Fatal("cache poisoning: tampered cert for a cached slot accepted")
	}
	// The failure must not be cached as success (nor flip the cached entry).
	if err := VerifyCert(v, 0, d, poisoned, 3); err == nil {
		t.Fatal("tampered cert accepted on retry")
	}
	if err := VerifyCert(v, 0, d, cert, 3); err != nil {
		t.Fatalf("original cert no longer accepted after poisoning attempt: %v", err)
	}

	// A cert that fails must never be served from cache even when the exact
	// same bytes are re-presented.
	before := v.CertCacheHits()
	if err := VerifyCert(v, 0, d, poisoned, 3); err == nil {
		t.Fatal("tampered cert accepted")
	}
	if v.CertCacheHits() != before+1 && v.CertCacheHits() != before {
		// The poisoned key must not be cached at all; any hit for it means
		// a failure was recorded as success.
		t.Fatal("failure entered the verified-cert cache")
	}
}

// BenchmarkVerifyCert measures commit-certificate verification at quorum
// sizes nf = 2, 4, 8 in three modes: serial (the seed path), batched on a
// 4-worker pool, and a verified-cache hit. Run with -benchmem; reference
// numbers live in internal/crypto/bench_baseline.json.
func BenchmarkVerifyCert(b *testing.B) {
	for _, nf := range []int{2, 4, 8} {
		kg, cert, d := certFixture(b, nf)
		for _, mode := range []struct {
			name    string
			workers int
			cache   bool
		}{{"serial", 0, false}, {"workers4", 4, false}, {"cachehit", 0, true}} {
			b.Run(fmt.Sprintf("nf=%d/%s", nf, mode.name), func(b *testing.B) {
				v := fixtureVerifier(b, kg, mode.workers)
				if !mode.cache {
					v.SetCertCacheSize(0)
				} else if err := VerifyCert(v, 0, d, cert, nf); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := VerifyCert(v, 0, d, cert, nf); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
