package pbft

import "ringbft/internal/types"

// MakeCheckpoint broadcasts a signed Checkpoint message vouching that this
// replica's state after executing sequence seq has digest state. Hosts call
// it every Config.CheckpointInterval executed sequences. Checkpoints serve
// two purposes (attack A3): they let replicas kept in dark by a malicious
// primary observe progress, and they advance the stable watermark so the log
// can be garbage-collected.
func (e *Engine) MakeCheckpoint(seq types.SeqNum, state types.Digest) {
	m := &types.Message{
		Type: types.MsgCheckpoint, From: e.self, Shard: e.shard,
		Seq: seq, Digest: state,
	}
	m.Sig = e.auth.Sign(m.SigBytes())
	e.recordCheckpoint(e.self, seq, state, m.Sig)
	for _, p := range e.peers {
		if p == e.self {
			continue
		}
		cp := *m
		e.cb.Send(p, &cp)
	}
}

func (e *Engine) onCheckpoint(m *types.Message) {
	if m.Seq <= e.stableSeq {
		return
	}
	if err := e.auth.Verify(m.From, m.SigBytes(), m.Sig); err != nil {
		return
	}
	e.recordCheckpoint(m.From, m.Seq, m.Digest, m.Sig)
}

// cpVote is one replica's signed checkpoint vote. The signature is retained
// so a quorum can later be re-assembled into a transferable certificate
// (CheckpointCert) — peer catch-up payloads carry it so a requester that
// never observed the quorum itself can still validate against it.
type cpVote struct {
	state types.Digest
	sig   []byte
}

func (e *Engine) recordCheckpoint(from types.NodeID, seq types.SeqNum, state types.Digest, sig []byte) {
	votes, ok := e.checkpoints[seq]
	if !ok {
		votes = make(map[types.NodeID]cpVote)
		e.checkpoints[seq] = votes
	}
	votes[from] = cpVote{state: state, sig: sig}

	// Stabilize when nf replicas vouch for the same state digest. Voters are
	// walked in canonical order so the stabilize callback fires on the same
	// vote in every replay, not whichever one map iteration reached first.
	counts := make(map[types.Digest]int, 2)
	for _, from := range types.SortedNodeKeys(votes) {
		d := votes[from].state
		counts[d]++
		if counts[d] >= e.nf && seq > e.stableSeq {
			e.stabilize(seq)
			if e.cb.Stabilized != nil {
				e.cb.Stabilized(seq, d)
			}
			return
		}
	}
}

// CheckpointCert re-assembles the nf-signed checkpoint certificate at seq,
// if this replica holds a full quorum of matching votes: the agreed digest
// plus nf transferable Signed proofs. Votes are retained for the current
// stable checkpoint (stabilize GCs only below it), so a replica that
// stabilized through a vote quorum can serve the certificate to peers.
func (e *Engine) CheckpointCert(seq types.SeqNum) (types.Digest, []types.Signed, bool) {
	votes := e.checkpoints[seq]
	counts := make(map[types.Digest]int, 2)
	for _, v := range votes {
		counts[v.state]++
	}
	var agreed types.Digest
	found := false
	for _, d := range types.SortedDigestKeys(counts) {
		if counts[d] >= e.nf {
			agreed, found = d, true
			break
		}
	}
	if !found {
		return types.Digest{}, nil, false
	}
	cert := make([]types.Signed, 0, e.nf)
	for _, from := range types.SortedNodeKeys(votes) {
		v := votes[from]
		if v.state != agreed || len(v.sig) == 0 {
			continue
		}
		cert = append(cert, types.Signed{
			From: from, Type: types.MsgCheckpoint, Shard: e.shard,
			Seq: seq, Digest: agreed, Sig: v.sig,
		})
		if len(cert) == e.nf {
			break
		}
	}
	if len(cert) < e.nf {
		return types.Digest{}, nil, false
	}
	return agreed, cert, true
}

// stabilize advances the stable watermark to seq and garbage-collects log
// entries and checkpoint votes at or below it.
func (e *Engine) stabilize(seq types.SeqNum) {
	e.stableSeq = seq
	for s := range e.log {
		if s <= seq {
			delete(e.log, s)
		}
	}
	for s := range e.checkpoints {
		if s < seq {
			delete(e.checkpoints, s)
		}
	}
	if e.nextSeq <= seq {
		e.nextSeq = seq + 1
	}
}

// LogSize returns the number of live log entries (post-GC); exposed for
// tests asserting checkpoint garbage collection.
func (e *Engine) LogSize() int { return len(e.log) }

// CheckpointVotes reports, for each pending checkpoint sequence, how many
// votes have been recorded (diagnostics).
func (e *Engine) CheckpointVotes() map[types.SeqNum]int {
	out := make(map[types.SeqNum]int, len(e.checkpoints))
	for s, votes := range e.checkpoints {
		out[s] = len(votes)
	}
	return out
}

// InFlight reports how many consensus instances the engine currently has in
// flight: sequences that are pre-prepared but not yet committed inside the
// log window. This is the propose-accounting surface for pipelined hosts
// (types.Config.PipelineDepth): a primary overlapping
// PRE-PREPARE/PREPARE/COMMIT across sequence numbers gates new proposals on
// this count, while the engine's own log window (Options.Window) remains the
// hard ceiling. The scan is O(window); the window is small (default 512) and
// hosts call this at event-loop rate, far below the per-message crypto cost.
func (e *Engine) InFlight() int { return e.UncommittedInWindow() }

// UncommittedInWindow counts log entries that are preprepared but not yet
// committed (diagnostics).
func (e *Engine) UncommittedInWindow() int {
	n := 0
	for _, ent := range e.log {
		if ent.preprepared && !ent.committed {
			n++
		}
	}
	return n
}
