package pbft

import "ringbft/internal/types"

// MakeCheckpoint broadcasts a signed Checkpoint message vouching that this
// replica's state after executing sequence seq has digest state. Hosts call
// it every Config.CheckpointInterval executed sequences. Checkpoints serve
// two purposes (attack A3): they let replicas kept in dark by a malicious
// primary observe progress, and they advance the stable watermark so the log
// can be garbage-collected.
func (e *Engine) MakeCheckpoint(seq types.SeqNum, state types.Digest) {
	e.recordCheckpoint(e.self, seq, state)
	m := &types.Message{
		Type: types.MsgCheckpoint, From: e.self, Shard: e.shard,
		Seq: seq, Digest: state,
	}
	e.broadcastSigned(m)
}

func (e *Engine) onCheckpoint(m *types.Message) {
	if m.Seq <= e.stableSeq {
		return
	}
	if err := e.auth.Verify(m.From, m.SigBytes(), m.Sig); err != nil {
		return
	}
	e.recordCheckpoint(m.From, m.Seq, m.Digest)
}

func (e *Engine) recordCheckpoint(from types.NodeID, seq types.SeqNum, state types.Digest) {
	votes, ok := e.checkpoints[seq]
	if !ok {
		votes = make(map[types.NodeID]types.Digest)
		e.checkpoints[seq] = votes
	}
	votes[from] = state

	// Stabilize when nf replicas vouch for the same state digest. Voters are
	// walked in canonical order so the stabilize callback fires on the same
	// vote in every replay, not whichever one map iteration reached first.
	counts := make(map[types.Digest]int, 2)
	for _, from := range types.SortedNodeKeys(votes) {
		d := votes[from]
		counts[d]++
		if counts[d] >= e.nf && seq > e.stableSeq {
			e.stabilize(seq)
			if e.cb.Stabilized != nil {
				e.cb.Stabilized(seq, d)
			}
			return
		}
	}
}

// stabilize advances the stable watermark to seq and garbage-collects log
// entries and checkpoint votes at or below it.
func (e *Engine) stabilize(seq types.SeqNum) {
	e.stableSeq = seq
	for s := range e.log {
		if s <= seq {
			delete(e.log, s)
		}
	}
	for s := range e.checkpoints {
		if s < seq {
			delete(e.checkpoints, s)
		}
	}
	if e.nextSeq <= seq {
		e.nextSeq = seq + 1
	}
}

// LogSize returns the number of live log entries (post-GC); exposed for
// tests asserting checkpoint garbage collection.
func (e *Engine) LogSize() int { return len(e.log) }

// CheckpointVotes reports, for each pending checkpoint sequence, how many
// votes have been recorded (diagnostics).
func (e *Engine) CheckpointVotes() map[types.SeqNum]int {
	out := make(map[types.SeqNum]int, len(e.checkpoints))
	for s, votes := range e.checkpoints {
		out[s] = len(votes)
	}
	return out
}

// UncommittedInWindow counts log entries that are preprepared but not yet
// committed (diagnostics).
func (e *Engine) UncommittedInWindow() int {
	n := 0
	for _, ent := range e.log {
		if ent.preprepared && !ent.committed {
			n++
		}
	}
	return n
}
