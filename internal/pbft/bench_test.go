package pbft

import (
	"testing"

	"ringbft/internal/types"
)

// BenchmarkConsensusRound measures one full PBFT three-phase decision for a
// 100-transaction batch across 4 replicas on the synchronous test bus —
// pure protocol + crypto cost, no network latency.
func BenchmarkConsensusRound(b *testing.B) {
	h := newHarness(&testing.T{}, 4)
	batch := &types.Batch{Involved: []types.ShardID{0}}
	for i := 0; i < 100; i++ {
		batch.Txns = append(batch.Txns, types.Txn{
			ID:     types.TxnID{Client: 1, Seq: uint64(i)},
			Writes: []types.Key{types.Key(i)},
		})
	}
	trackers := make([]*CheckpointTracker, 4)
	for i := range trackers {
		trackers[i] = NewCheckpointTracker(64)
		i := i
		h.engines[i].cb.Committed = func(seq types.SeqNum, bb *types.Batch, _ []types.Signed) {
			trackers[i].Committed(h.engines[i], seq, bb)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := *batch
		bb.Txns = append([]types.Txn(nil), batch.Txns...)
		bb.Txns[0].Delta = types.Value(i) // unique digest per round
		if _, err := h.engines[0].Propose(&bb); err != nil {
			b.Fatal(err)
		}
		h.pump()
	}
}

func BenchmarkVerifyCommitCert(b *testing.B) {
	h := newHarness(&testing.T{}, 4)
	var cert []types.Signed
	var digest types.Digest
	h.engines[1].cb.Committed = func(_ types.SeqNum, bb *types.Batch, c []types.Signed) {
		cert, digest = c, bb.Digest()
	}
	if _, err := h.engines[0].Propose(batchOf(1)); err != nil {
		b.Fatal(err)
	}
	h.pump()
	if cert == nil {
		b.Fatal("no cert")
	}
	auth := h.engines[2].verifier
	auth.SetCertCacheSize(0) // measure real verification, not cache hits
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyCert(auth, 0, digest, cert, 3); err != nil {
			b.Fatal(err)
		}
	}
}
