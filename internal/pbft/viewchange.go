package pbft

import (
	"time"

	"ringbft/internal/trace"
	"ringbft/internal/types"
)

// StartViewChange abandons the current view and broadcasts a ViewChange
// message targeting view target (> current view). Hosts call it when the
// local timer expires: either nf Commits never arrived for a proposal, or
// the primary failed to propose a client request (attack A2), or f+1
// RemoteView messages arrived from the next shard in ring order (Fig 6).
func (e *Engine) StartViewChange(target types.View) {
	if target <= e.view {
		target = e.view + 1
	}
	if e.inViewChange && target <= e.vcTarget {
		return
	}
	e.inViewChange = true
	e.vcTarget = target
	e.vcStarted = e.now()
	e.observe(types.SeqNum(target), trace.PhaseViewChange)

	// P set: every prepared-but-unstable entry, with its batch so the new
	// primary can re-propose it.
	// The P set travels in the signed ViewChange; walk the log in canonical
	// sequence order so identically seeded replicas emit byte-identical
	// messages.
	var proofs []types.PreparedProof
	for _, seq := range types.SortedSeqKeys(e.log) {
		ent := e.log[seq]
		if ent.prepared && seq > e.stableSeq {
			p := types.PreparedProof{
				View: ent.view, Seq: seq, Digest: ent.digest, Batch: ent.batch,
			}
			// Carry the certificate that justified this batch: preparing it
			// required the local Justify gate to pass, so the host holds the
			// certificate, and the new primary's NewView must present it to
			// receivers that never accepted it themselves.
			if e.cb.Justification != nil {
				p.Justification = e.cb.Justification(ent.batch)
			}
			proofs = append(proofs, p)
		}
	}
	// Seq mirrors StableSeq because the canonical signed tuple covers Seq:
	// the NewView justification reconstructs exactly this tuple.
	m := &types.Message{
		Type: types.MsgViewChange, From: e.self, Shard: e.shard,
		View: target, Seq: e.stableSeq, StableSeq: e.stableSeq, Prepared: proofs,
	}
	e.recordViewChange(e.self, m)
	e.broadcastSigned(m)
}

func (e *Engine) onViewChange(m *types.Message) {
	if m.View <= e.view {
		return
	}
	if err := e.auth.Verify(m.From, m.SigBytes(), m.Sig); err != nil {
		return
	}
	e.recordViewChange(m.From, m)

	// Join rule: seeing f+1 distinct replicas demanding a view higher than
	// our target proves at least one non-faulty replica timed out; join
	// them so the view change completes even if our own timer lags.
	votes := e.vcVotes[m.View]
	if len(votes) > e.f && (!e.inViewChange || m.View > e.vcTarget) {
		e.StartViewChange(m.View)
	}
	e.maybeNewView(m.View)
}

func (e *Engine) recordViewChange(from types.NodeID, m *types.Message) {
	msgs, ok := e.vcMsgs[m.View]
	if !ok {
		msgs = make(map[types.NodeID]*types.Message)
		e.vcMsgs[m.View] = msgs
	}
	msgs[from] = m
	votes, ok := e.vcVotes[m.View]
	if !ok {
		votes = make(map[types.NodeID]struct{})
		e.vcVotes[m.View] = votes
	}
	votes[from] = struct{}{}
}

// maybeNewView runs at the would-be primary of view v: with nf ViewChange
// messages it assembles the NewView — re-proposals for every prepared
// sequence (highest view wins) and no-op fillers for gaps — and installs the
// view.
func (e *Engine) maybeNewView(v types.View) {
	if e.Primary(v) != e.self || v <= e.view {
		return
	}
	msgs := e.vcMsgs[v]
	if len(msgs) < e.nf {
		return
	}

	// Merge P sets: for each sequence, the proof from the highest view wins
	// (PBFT's selection rule); establish the re-proposal range.
	maxStable := types.SeqNum(0)
	best := make(map[types.SeqNum]types.PreparedProof)
	maxSeq := types.SeqNum(0)
	justification := make([]types.Signed, 0, len(msgs))
	// Canonical voter order: the justification list is embedded in the
	// NewView message, so its layout must not follow map iteration order.
	for _, from := range types.SortedNodeKeys(msgs) {
		vc := msgs[from]
		if vc.StableSeq > maxStable {
			maxStable = vc.StableSeq
		}
		for _, p := range vc.Prepared {
			cur, ok := best[p.Seq]
			if !ok || p.View > cur.View {
				best[p.Seq] = p
			}
			if p.Seq > maxSeq {
				maxSeq = p.Seq
			}
		}
		justification = append(justification, types.Signed{
			From: from, Type: types.MsgViewChange, Shard: e.shard,
			View: vc.View, Seq: vc.StableSeq, Sig: vc.Sig,
		})
	}
	if maxStable > e.stableSeq {
		e.stabilize(maxStable)
	}

	// O set: re-proposals from maxStable+1..maxSeq, no-ops for gaps.
	var reproposals []types.PreparedProof
	for s := maxStable + 1; s <= maxSeq; s++ {
		if p, ok := best[s]; ok {
			// A P-set proof from a replica that never attached the
			// justification (older sender, lost field) is topped up from
			// this primary's own certificate store.
			if len(p.Justification) == 0 && e.cb.Justification != nil {
				p.Justification = e.cb.Justification(p.Batch)
			}
			reproposals = append(reproposals, p)
		} else {
			noop := &types.Batch{}
			reproposals = append(reproposals, types.PreparedProof{
				View: v, Seq: s, Digest: noop.Digest(), Batch: noop,
			})
		}
	}

	nv := &types.Message{
		Type: types.MsgNewView, From: e.self, Shard: e.shard,
		View: v, StableSeq: maxStable,
		Prepared: reproposals, ViewMsgs: justification,
	}
	e.broadcastSigned(nv)
	e.installView(v, maxStable, reproposals, true)
}

func (e *Engine) onNewView(m *types.Message) {
	if m.View <= e.view || m.From != e.Primary(m.View) {
		return
	}
	if err := e.auth.Verify(m.From, m.SigBytes(), m.Sig); err != nil {
		return
	}
	if len(m.ViewMsgs) < e.nf {
		return
	}
	// Verify the justification: nf distinct signed ViewChange tuples,
	// batched on the shared verifier's worker pool (the structural filter
	// and sender dedup stay here; the verifier only spends Ed25519 work).
	seen := make(map[types.NodeID]struct{}, len(m.ViewMsgs))
	entries := make([]*types.Signed, 0, len(m.ViewMsgs))
	for i := range m.ViewMsgs {
		s := &m.ViewMsgs[i]
		if s.Type != types.MsgViewChange || s.View != m.View || s.Shard != e.shard {
			continue
		}
		if _, dup := seen[s.From]; dup {
			continue
		}
		seen[s.From] = struct{}{}
		entries = append(entries, s)
	}
	if e.verifier.VerifyQuorum(entries, e.nf) < e.nf {
		return
	}
	// Justification gate: every re-proposal this replica would adopt must
	// either pass the local Justify gate or carry a verifiable certificate.
	// One unjustified batch rejects the whole NewView — adopting the rest
	// would let a Byzantine new primary split the shard between replicas
	// that saw different NewView variants — and the view-change timer then
	// escalates past the faulty primary (Tick).
	for i := range m.Prepared {
		p := &m.Prepared[i]
		if ent, ok := e.log[p.Seq]; ok && ent.committed {
			continue // already decided locally; nothing is adopted for it
		}
		if p.Batch == nil || e.justifiedProof(p) {
			continue
		}
		if e.cb.UnjustifiedNewView != nil {
			e.cb.UnjustifiedNewView(m, *p)
		}
		return
	}
	if m.StableSeq > e.stableSeq {
		e.stabilize(m.StableSeq)
	}
	e.installView(m.View, m.StableSeq, m.Prepared, false)
}

// justifiedProof reports whether re-proposal p may be adopted: the local
// Justify gate passes (this replica holds the evidence itself), or the
// proof carries a justification the host verifies (this replica is behind —
// e.g. its Forward quorum never completed — but the certificate is
// transferable and speaks for itself).
func (e *Engine) justifiedProof(p *types.PreparedProof) bool {
	if e.cb.Justify == nil || e.cb.Justify(p.Batch) {
		return true
	}
	return e.cb.VerifyJustification != nil && e.cb.VerifyJustification(p.Batch, p.Justification)
}

// installView moves the replica into view v, resets per-view state, and
// replays the new primary's re-proposals through the ordinary three-phase
// path so that previously prepared batches commit in the new view.
func (e *Engine) installView(v types.View, stable types.SeqNum, reproposals []types.PreparedProof, isPrimary bool) {
	e.view = v
	e.inViewChange = false
	e.vcTarget = 0
	delete(e.vcMsgs, v)
	delete(e.vcVotes, v)

	// Reset un-committed entries: they must re-run phases in the new view.
	// firstSeen restarts too — the watchdog must give the new view a full
	// LocalTimeout to commit the re-proposals. Keeping the old timestamp
	// livelocks the shard: the first tick after an install sees an entry
	// "stuck" longer than the timeout and immediately starts the next view
	// change, aborting every re-proposal round forever (found by
	// internal/chaos, loss-storm and Byzantine-primary schedules).
	now := e.now()
	maxSeq := e.stableSeq
	for seq, ent := range e.log {
		if seq > maxSeq {
			maxSeq = seq
		}
		if !ent.committed {
			ent.preprepared = false
			ent.prepared = false
			ent.view = v
			ent.prepares = make(map[types.NodeID]types.Digest)
			ent.commits = make(map[types.NodeID]commitVote)
			ent.firstSeen = now
			// Equivocation evidence is per-(view, pre-prepare); the new
			// view's proposal is the NewView itself, so the pairing state
			// resets (the evidence log retains anything already recorded).
			ent.ppMsg = nil
			ent.conflicts = nil
			ent.accused = false
		}
	}
	for _, p := range reproposals {
		if p.Seq > maxSeq {
			maxSeq = p.Seq
		}
	}
	e.nextSeq = maxSeq + 1

	for _, p := range reproposals {
		ent := e.getEntry(p.Seq)
		if ent.committed {
			continue // already decided; NewView carries the same digest for honest quorums
		}
		ent.view = v
		ent.digest = p.Digest
		ent.batch = p.Batch
		ent.preprepared = true
		ent.prepares[e.Primary(v)] = p.Digest
		if !isPrimary {
			ent.prepares[e.self] = p.Digest
			prep := &types.Message{
				Type: types.MsgPrepare, From: e.self, Shard: e.shard,
				View: v, Seq: p.Seq, Digest: p.Digest,
			}
			e.broadcastMAC(prep)
		}
		e.maybePrepared(p.Seq, ent)
	}
	if e.cb.ViewChanged != nil {
		e.cb.ViewChanged(v)
	}

	// Replay stashed messages that were waiting for this view.
	replay := e.future
	e.future = nil
	for _, m := range replay {
		if m.View >= v {
			e.OnMessage(m)
		}
	}
}

// Tick drives time-based escalation: if a view change has stalled (no
// NewView within the view timeout) the replica targets the next view. Hosts
// call Tick periodically from their event loops.
func (e *Engine) Tick(now time.Time) {
	if e.inViewChange && now.Sub(e.vcStarted) > e.vcTimeout {
		e.StartViewChange(e.vcTarget + 1)
	}
}
