module ringbft

go 1.24
