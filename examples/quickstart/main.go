// Quickstart: spin up an embedded RingBFT cluster (3 shards × 4 replicas),
// run one single-shard and one cross-shard transaction through consensus,
// and verify the per-shard blockchains.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ringbft"
)

func main() {
	cluster, err := ringbft.NewCluster(ringbft.ClusterConfig{
		Shards:           3,
		ReplicasPerShard: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx := context.Background()

	// A single-shard transaction: read-modify-write one record of shard 1.
	k := cluster.KeyOf(1, 42)
	res, err := cluster.Submit(ctx, ringbft.Txn{
		Reads:  []ringbft.Key{k},
		Writes: []ringbft.Key{k},
		Delta:  10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-shard txn on shard %d committed, result=%d\n", cluster.OwnerShard(k), res[0])

	// A cross-shard transaction touching all three shards: it travels the
	// ring (shard 0 -> 1 -> 2) in two rotations.
	k0, k1, k2 := cluster.KeyOf(0, 7), cluster.KeyOf(1, 7), cluster.KeyOf(2, 7)
	res, err = cluster.Submit(ctx, ringbft.Txn{
		Reads:  []ringbft.Key{k0, k1, k2},
		Writes: []ringbft.Key{k0, k1, k2},
		Delta:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-shard txn committed across 3 shards, result=%d\n", res[0])

	// Let executions land everywhere, then audit the ledgers.
	time.Sleep(200 * time.Millisecond)
	if err := cluster.VerifyLedgers(); err != nil {
		log.Fatalf("ledger verification failed: %v", err)
	}
	for s := 0; s < cluster.Shards(); s++ {
		blocks := cluster.Ledger(ringbft.ShardID(s), 0)
		fmt.Printf("shard %d ledger: %d blocks (genesis + %d committed)\n", s, len(blocks), len(blocks)-1)
	}
	fmt.Println("all ledgers verified: hash chains and Merkle roots intact")
}
