// Complexcst: complex cross-shard transactions with data dependencies
// (Section 8.8). The written value on one shard depends on records owned by
// other shards, so execution is only possible because RingBFT accumulates
// read sets in Forward messages during rotation 1 and ships Σ in Execute
// messages during rotation 2. The example checks the arithmetic end to end —
// something AHL and Sharper cannot do at all ("remains an open problem").
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ringbft"
)

func main() {
	const shards = 4
	cluster, err := ringbft.NewCluster(ringbft.ClusterConfig{
		Shards:           shards,
		ReplicasPerShard: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx := context.Background()

	// Seed distinct values onto each shard so the dependency is visible.
	seeds := make([]ringbft.Value, shards)
	keys := make([]ringbft.Key, shards)
	for s := 0; s < shards; s++ {
		keys[s] = cluster.KeyOf(ringbft.ShardID(s), uint64(100+s))
		seeds[s] = cluster.Read(keys[s], 0) // preloaded value = key
	}

	// The transaction writes ONLY on shard 0, but reads from all four
	// shards: new value = old + Δ + Σ reads. Shards 1-3 contribute reads
	// that shard 0 cannot see locally.
	const delta = 1000
	res, err := cluster.Submit(ctx, ringbft.Txn{
		Reads:  keys,
		Writes: []ringbft.Key{keys[0]},
		Delta:  delta,
	})
	if err != nil {
		log.Fatal(err)
	}

	want := ringbft.Value(delta)
	for _, s := range seeds {
		want += s
	}
	fmt.Printf("complex cst result  = %d\n", res[0])
	fmt.Printf("expected (Δ+Σreads) = %d\n", want)
	if res[0] != want {
		log.Fatal("remote read values were lost in the ring rotation")
	}

	time.Sleep(200 * time.Millisecond)
	got := cluster.Read(keys[0], 1)
	if got != seeds[0]+want {
		log.Fatalf("shard 0 state %d, want %d", got, seeds[0]+want)
	}
	fmt.Printf("shard 0 record updated to %d using values owned by shards 1-%d\n", got, shards-1)

	// Scale the dependency count like Fig 10: 8..64 remote reads per txn.
	for _, deps := range []int{8, 16, 32, 64} {
		tx := ringbft.Txn{Writes: []ringbft.Key{keys[0]}, Delta: 1}
		for i := 0; i < deps; i++ {
			s := ringbft.ShardID(i % shards)
			tx.Reads = append(tx.Reads, cluster.KeyOf(s, uint64(200+i)))
		}
		start := time.Now()
		if _, err := cluster.Submit(ctx, tx); err != nil {
			log.Fatalf("cst with %d dependencies failed: %v", deps, err)
		}
		fmt.Printf("cst with %2d remote-read dependencies committed in %v\n",
			deps, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("complex cross-shard transactions with extensive dependencies all executed")
}
