// Banking: a federated settlement network. Five institutions each run one
// shard holding their customers' accounts; settlement transactions credit
// accounts at several institutions atomically (the motivating federated
// data-management scenario of the paper's introduction). Concurrent
// settlements — including conflicting ones on the same accounts — must leave
// every institution's replicas agreeing on balances and on the order of
// conflicting settlements (Theorems 6.2/6.3).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"ringbft"
)

const (
	institutions = 5 // shards: one per institution
	replicas     = 4 // replicas per institution (tolerates 1 Byzantine each)
	settlements  = 12
)

func main() {
	cluster, err := ringbft.NewCluster(ringbft.ClusterConfig{
		Shards:           institutions,
		ReplicasPerShard: replicas,
		// Run over the 15-region WAN model compressed 100×, so institution
		// links have realistic relative latencies.
		LatencyScale: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	// Account (i, c) = customer c of institution i.
	account := func(inst ringbft.ShardID, customer uint64) ringbft.Key {
		return cluster.KeyOf(inst, customer)
	}

	fmt.Printf("federated settlement network: %d institutions × %d replicas\n", institutions, replicas)

	// Fire concurrent settlements. Each credits one account at 2-3
	// institutions with the same audit amount; some deliberately touch the
	// same accounts to exercise conflict ordering.
	var wg sync.WaitGroup
	results := make([]ringbft.Value, settlements)
	for i := 0; i < settlements; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := account(ringbft.ShardID(i%institutions), uint64(i%3)) // deliberate overlap
			b := account(ringbft.ShardID((i+1)%institutions), uint64(i))
			c := account(ringbft.ShardID((i+2)%institutions), uint64(i))
			res, err := cluster.Submit(context.Background(), ringbft.Txn{
				Reads:  []ringbft.Key{a, b, c},
				Writes: []ringbft.Key{a, b, c},
				Delta:  ringbft.Value(100 * (i + 1)),
			})
			if err != nil {
				log.Fatalf("settlement %d failed: %v", i, err)
			}
			results[i] = res[0]
		}(i)
	}
	wg.Wait()
	fmt.Printf("%d concurrent cross-institution settlements committed\n", settlements)

	time.Sleep(300 * time.Millisecond) // let trailing executions land

	// Audit 1: every replica of every institution reports identical
	// balances (non-divergence).
	for inst := 0; inst < institutions; inst++ {
		for cust := uint64(0); cust < 3; cust++ {
			k := account(ringbft.ShardID(inst), cust)
			ref := cluster.Read(k, 0)
			for r := 1; r < replicas; r++ {
				if got := cluster.Read(k, r); got != ref {
					log.Fatalf("institution %d replica %d diverges on account %d: %d vs %d",
						inst, r, cust, got, ref)
				}
			}
		}
	}
	fmt.Println("audit 1 passed: all replicas agree on every balance")

	// Audit 2: immutable ledgers verify at every institution.
	if err := cluster.VerifyLedgers(); err != nil {
		log.Fatalf("ledger audit failed: %v", err)
	}
	fmt.Println("audit 2 passed: every institution's blockchain verifies")

	for i, r := range results {
		if r == 0 {
			log.Fatalf("settlement %d has empty result", i)
		}
	}
	fmt.Println("audit 3 passed: every settlement carries a non-trivial audit value")
}
