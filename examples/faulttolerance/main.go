// Faulttolerance: crash a shard's primary mid-run and watch the view-change
// protocol elect a replacement (the paper's Fig 9 scenario, attack A2).
// Transactions submitted while the primary is dead still commit — clients
// rebroadcast after a timeout, backups detect the silent primary, and the
// new primary re-proposes pending requests.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ringbft"
)

func main() {
	cluster, err := ringbft.NewCluster(ringbft.ClusterConfig{
		Shards:           2,
		ReplicasPerShard: 4, // f = 1: one Byzantine/crashed replica per shard
		SubmitTimeout:    30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx := context.Background()
	k := cluster.KeyOf(0, 1)

	// Normal operation.
	start := time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy primary: txn committed in %v\n", time.Since(start).Round(time.Millisecond))

	// Crash shard 0's primary (replica 0 of view 0).
	fmt.Println("crashing the primary of shard 0 ...")
	cluster.CrashReplica(0, 0)

	start = time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 2}); err != nil {
		log.Fatalf("txn lost after primary crash: %v", err)
	}
	fmt.Printf("view change recovered: txn committed in %v under the new primary\n",
		time.Since(start).Round(time.Millisecond))

	// Subsequent transactions run at normal speed in the new view.
	start = time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state restored: next txn in %v\n", time.Since(start).Round(time.Millisecond))

	// The dead primary stays dead; the other three replicas agree.
	time.Sleep(200 * time.Millisecond)
	ref := cluster.Read(k, 1)
	for r := 2; r < 4; r++ {
		if got := cluster.Read(k, r); got != ref {
			log.Fatalf("replica %d diverges: %d vs %d", r, got, ref)
		}
	}
	fmt.Printf("replicas 1-3 agree on the final balance (%d); safety held through the fault\n", ref)
}
