// Faulttolerance: crash a shard's primary mid-run and watch the view-change
// protocol elect a replacement (the paper's Fig 9 scenario, attack A2).
// Transactions submitted while the primary is dead still commit — clients
// rebroadcast after a timeout, backups detect the silent primary, and the
// new primary re-proposes pending requests.
//
// The second act demonstrates the durability subsystem: a backup is
// killed outright (its memory is gone, unlike the crashed primary whose
// process kept running), traffic continues without it, and a restart
// recovers its state from the write-ahead log and snapshots — topped up by
// checkpoint-certified peer state transfer for everything it missed.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ringbft"
)

func main() {
	cluster, err := ringbft.NewCluster(ringbft.ClusterConfig{
		Shards:           2,
		ReplicasPerShard: 4, // f = 1: one Byzantine/crashed replica per shard
		SubmitTimeout:    30 * time.Second,
		// Durability: every replica keeps a segmented WAL + snapshots (on an
		// in-process filesystem here; set DataDir for real disk), so killed
		// replicas can restart and recover.
		Durable:            true,
		CheckpointInterval: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()

	ctx := context.Background()
	k := cluster.KeyOf(0, 1)

	// Normal operation.
	start := time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy primary: txn committed in %v\n", time.Since(start).Round(time.Millisecond))

	// Crash shard 0's primary (replica 0 of view 0).
	fmt.Println("crashing the primary of shard 0 ...")
	cluster.CrashReplica(0, 0)

	start = time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 2}); err != nil {
		log.Fatalf("txn lost after primary crash: %v", err)
	}
	fmt.Printf("view change recovered: txn committed in %v under the new primary\n",
		time.Since(start).Round(time.Millisecond))

	// Subsequent transactions run at normal speed in the new view.
	start = time.Now()
	if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k}, Writes: []ringbft.Key{k}, Delta: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady state restored: next txn in %v\n", time.Since(start).Round(time.Millisecond))

	// The dead primary stays dead; the other three replicas agree.
	time.Sleep(200 * time.Millisecond)
	ref := cluster.Read(k, 1)
	for r := 2; r < 4; r++ {
		if got := cluster.Read(k, r); got != ref {
			log.Fatalf("replica %d diverges: %d vs %d", r, got, ref)
		}
	}
	fmt.Printf("replicas 1-3 agree on the final balance (%d); safety held through the fault\n", ref)

	// Act two: kill a backup outright and recover it from disk. Shard 1 is
	// fully healthy (shard 0 already runs with its crashed ex-primary, and
	// f = 1 budgets one fault per shard).
	k1 := cluster.KeyOf(1, 1)
	fmt.Println("\nkilling replica 3 of shard 1 (process gone, memory lost) ...")
	cluster.KillReplica(1, 3)
	for i := 0; i < 20; i++ {
		if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k1}, Writes: []ringbft.Key{k1}, Delta: 1}); err != nil {
			log.Fatalf("txn lost while backup dead: %v", err)
		}
	}
	fmt.Println("20 txns committed without it; restarting it from WAL + snapshots ...")
	if err := cluster.RestartReplica(1, 3); err != nil {
		log.Fatal(err)
	}
	// Keep committing so checkpoints pull the restarted replica forward
	// (state transfer covers whatever the WAL missed while it was dead).
	for i := 0; i < 16; i++ {
		if _, err := cluster.Submit(ctx, ringbft.Txn{Reads: []ringbft.Key{k1}, Writes: []ringbft.Key{k1}, Delta: 1}); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for cluster.Read(k1, 3) != cluster.Read(k1, 1) {
		if time.Now().After(deadline) {
			log.Fatalf("restarted replica never converged: %d vs %d", cluster.Read(k1, 3), cluster.Read(k1, 1))
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("restarted replica recovered and converged (balance %d); durability + state transfer held\n", cluster.Read(k1, 3))
}
