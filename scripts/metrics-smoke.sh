#!/bin/sh
# metrics-smoke: boot a 1x4 RingBFT cluster on loopback TCP, push a little
# client traffic, scrape replica 0's /metrics endpoint, and assert that the
# exposition carries live series from every instrumented layer — consensus
# (pbft/ringbft), transport (tcpnet), durability (wal), and the execution
# scheduler (sched). Exercises the same endpoint the ops runbook scrapes, so
# a regression in registration or exposition fails CI, not a deployment.
#
# Usage: scripts/metrics-smoke.sh [workdir]
set -eu

WORK=${1:-$(mktemp -d)}
mkdir -p "$WORK"
BASE_PORT=${METRICS_SMOKE_PORT:-7750}
METRICS_PORT=$((BASE_PORT + 10))
CLIENT_PORT=$((BASE_PORT + 11))
TOPO="$WORK/topo.json"
PIDS=""

cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

cat >"$TOPO" <<EOF
{
  "shards": 1,
  "replicasPerShard": 4,
  "records": 512,
  "seed": 42,
  "nodes": {
    "0/0": "127.0.0.1:$BASE_PORT",
    "0/1": "127.0.0.1:$((BASE_PORT + 1))",
    "0/2": "127.0.0.1:$((BASE_PORT + 2))",
    "0/3": "127.0.0.1:$((BASE_PORT + 3))"
  },
  "clients": {"1": "127.0.0.1:$CLIENT_PORT"}
}
EOF

echo "== metrics-smoke: building binaries"
go build -o "$WORK/ringbft-node" ./cmd/ringbft-node
go build -o "$WORK/ringbft-client" ./cmd/ringbft-client

echo "== metrics-smoke: starting 4 replicas (metrics on :$METRICS_PORT)"
for i in 0 1 2 3; do
    addr=""
    if [ "$i" = 0 ]; then addr="-metrics-addr 127.0.0.1:$METRICS_PORT"; fi
    # shellcheck disable=SC2086  # $addr is intentionally word-split
    "$WORK/ringbft-node" -topology "$TOPO" -shard 0 -index "$i" \
        -datadir "$WORK/data" $addr >"$WORK/node-$i.log" 2>&1 &
    PIDS="$PIDS $!"
done

echo "== metrics-smoke: submitting client traffic"
ok=0
for attempt in 1 2 3 4 5; do
    if "$WORK/ringbft-client" -topology "$TOPO" -listen "127.0.0.1:$CLIENT_PORT" \
        -batches 5 -batch 4 -cross 0 >"$WORK/client.log" 2>&1; then
        ok=1
        break
    fi
    echo "   client attempt $attempt failed (cluster still dialing?); retrying"
    sleep 1
done
if [ "$ok" != 1 ]; then
    echo "metrics-smoke: client never completed" >&2
    cat "$WORK/client.log" >&2
    exit 1
fi

echo "== metrics-smoke: scraping http://127.0.0.1:$METRICS_PORT/metrics"
SCRAPE="$WORK/metrics.txt"
if command -v curl >/dev/null 2>&1; then
    curl -sf "http://127.0.0.1:$METRICS_PORT/metrics" >"$SCRAPE"
else
    wget -qO "$SCRAPE" "http://127.0.0.1:$METRICS_PORT/metrics"
fi

# Every instrumented layer must surface at least one live series.
fail=0
for series in \
    pbft_phase_transitions_total \
    ringbft_executed_txns_total \
    tcpnet_frames_sent_total \
    wal_fsync_seconds \
    sched_sequential_batches_total; do
    if ! grep -q "^$series" "$SCRAPE"; then
        echo "metrics-smoke: series $series missing from /metrics" >&2
        fail=1
    fi
done
# Consensus must actually have moved: the commit-phase counter is non-zero.
if ! grep 'pbft_phase_transitions_total{.*phase="commit"' "$SCRAPE" |
    grep -qv ' 0$'; then
    echo "metrics-smoke: no committed phase transitions recorded" >&2
    fail=1
fi
if [ "$fail" != 0 ]; then
    echo "-- scrape follows --" >&2
    cat "$SCRAPE" >&2
    exit 1
fi

echo "== metrics-smoke: OK ($(wc -l <"$SCRAPE") exposition lines)"
