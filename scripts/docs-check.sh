#!/bin/sh
# docs-check: fail when the docs drift from the binaries or the Makefile.
#
#   1. Every backticked `-flag` in the docs must be a flag some binary or
#      test file actually defines (go-tool flags like -run are allowlisted).
#   2. Every flag ringbft-node defines must be documented: the deployment
#      binary's knob surface is the docs' contract with operators.
#   3. Every `make <target>` the docs reference must exist in the Makefile.
#   4. ARCHITECTURE.md must exist and be linked from README.md.
#
# Run as `make docs-check` (part of `make verify` and the CI build-test job).
set -eu
cd "$(dirname "$0")/.."

DOCS="README.md EXPERIMENTS.md ARCHITECTURE.md"
fail=0

# Flags owned by the go tool itself; the docs name them in test/bench
# invocations, no binary of ours defines them.
go_tool_flags="run v race bench benchmem benchtime fuzz fuzztime"

# Every flag name defined via the flag package anywhere in cmd/ or
# internal/ (test files define the -chaos.* replay flags).
defined=$(grep -rhoE 'flag\.[A-Za-z0-9]+\("[^"]+"' cmd internal --include='*.go' \
    | sed -E 's/.*\("([^"]+)"/\1/' | sort -u)

# 1. Documented flags must exist. A doc flag is a backtick immediately
# followed by a dash: `-pipeline-depth`, `-chaos.seed=N`, `-profile full`.
doc_flags=$(grep -ohE '`-[a-z][a-z0-9.-]*' $DOCS | sed 's/^`-//' | sort -u)
for f in $doc_flags; do
    case " $go_tool_flags " in *" $f "*) continue ;; esac
    if ! printf '%s\n' "$defined" | grep -qx "$f"; then
        echo "docs-check: docs mention \`-$f\` but no binary defines a flag named \"$f\"" >&2
        fail=1
    fi
done

# 2. Every ringbft-node flag must appear as -<name> somewhere in the docs.
node_flags=$(grep -oE 'flag\.[A-Za-z0-9]+\("[^"]+"' cmd/ringbft-node/main.go \
    | sed -E 's/.*\("([^"]+)"/\1/')
for f in $node_flags; do
    if ! grep -qE -- "-$f\b" $DOCS; then
        echo "docs-check: ringbft-node defines -$f but no doc mentions it" >&2
        fail=1
    fi
done

# 3. Referenced make targets must exist. Doc references are either
# backticked (`make verify`) or a code-fence line starting with "make ".
targets=$(grep -E '^[A-Za-z][A-Za-z0-9_-]*:' Makefile | cut -d: -f1 | sort -u)
doc_targets=$(grep -ohE '(`|^)make [a-z][a-z0-9-]*' $DOCS \
    | sed -E 's/^`?make //' | sort -u)
for t in $doc_targets; do
    if ! printf '%s\n' "$targets" | grep -qx "$t"; then
        echo "docs-check: docs reference \"make $t\" but the Makefile has no target \"$t\"" >&2
        fail=1
    fi
done

# 4. The architecture doc must exist and be reachable from the README.
if [ ! -f ARCHITECTURE.md ]; then
    echo "docs-check: ARCHITECTURE.md is missing" >&2
    fail=1
elif ! grep -q 'ARCHITECTURE.md' README.md; then
    echo "docs-check: README.md does not link ARCHITECTURE.md" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "docs-check: OK ($(printf '%s\n' "$doc_flags" | wc -l | tr -d ' ') doc flags, $(printf '%s\n' "$doc_targets" | wc -l | tr -d ' ') make targets cross-checked)"
